#!/bin/sh
# Repository health gate: formatting, vet, doc-comment lint, the full
# test suite, the race detector over the packages that run concurrent
# machinery (the interpreter's shared closure-compiled programs, the obs
# registry, the compiler's per-function analysis fan-out, the SFI trial
# pool, the campaign daemon, and the experiments compile cache / worker
# pool), a short-budget run of the generative fuzz oracles
# (internal/progen), plus command smoke runs that exercise the
# observability flags end to end — including a check that metrics
# counters are identical under ENCORE_WORKERS=1 and the default pool,
# that the closure execution engine reproduces the fast engine's output
# bit for bit across the full workload suite and the SFI trial ledger,
# and that the encore-serve daemon's streamed campaign ledger is
# byte-identical to the batch encore-sfi -trace ledger for the same
# (workload, config, seed). The telemetry smokes additionally check that
# encore-sfi -stats output is byte-identical across worker counts and
# engines, and that the Prometheus expositions (CLI -prom and the
# daemon's /metrics?format=prom) pass scripts/promlint.go. The campaign
# smokes additionally check that a 3-shard -shard/-merge split
# reproduces the single-process ledger and stats byte for byte, that
# -adaptive stopping elides the same trials regardless of worker count
# and engine, and that fork-from-checkpoint trials (-checkpoints) leave
# the trial ledger byte-identical to full golden-prefix replay.
#
# Usage: scripts/check.sh   (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> doclint (package comments + obs/serve/stats/trace/workpool godoc)"
go run scripts/doclint.go

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./internal/interp ./internal/obs ./internal/core ./internal/sfi ./internal/serve ./internal/workpool ./internal/experiments ./internal/trace ./internal/attrib ./internal/stats ./internal/ci ./internal/progen"
go test -race ./internal/interp ./internal/obs ./internal/core ./internal/sfi ./internal/serve ./internal/workpool ./internal/experiments ./internal/trace ./internal/attrib ./internal/stats ./internal/ci ./internal/progen

echo "==> fuzz smoke (generative oracles, ${FUZZTIME:-10s} per target)"
make -s fuzz-smoke FUZZTIME="${FUZZTIME:-10s}"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "==> build command binaries"
go build -o "$tmp/encore" ./cmd/encore
go build -o "$tmp/encore-bench" ./cmd/encore-bench
go build -o "$tmp/encore-sfi" ./cmd/encore-sfi
go build -o "$tmp/encore-serve" ./cmd/encore-serve

echo "==> flag surface (-h must document the observability flags)"
"$tmp/encore" -h 2>&1 | grep -q -- '-metrics' || { echo "encore -h: missing -metrics" >&2; exit 1; }
"$tmp/encore-sfi" -h 2>&1 | grep -q -- '-metrics' || { echo "encore-sfi -h: missing -metrics" >&2; exit 1; }
"$tmp/encore-sfi" -h 2>&1 | grep -q -- '-progress' || { echo "encore-sfi -h: missing -progress" >&2; exit 1; }
"$tmp/encore-bench" -h 2>&1 | grep -q -- '-metrics' || { echo "encore-bench -h: missing -metrics" >&2; exit 1; }
"$tmp/encore-bench" -h 2>&1 | grep -q -- '-cpuprofile' || { echo "encore-bench -h: missing -cpuprofile" >&2; exit 1; }
"$tmp/encore-bench" -h 2>&1 | grep -q -- '-memprofile' || { echo "encore-bench -h: missing -memprofile" >&2; exit 1; }
"$tmp/encore-sfi" -h 2>&1 | grep -q -- '-trace' || { echo "encore-sfi -h: missing -trace" >&2; exit 1; }
"$tmp/encore-sfi" -h 2>&1 | grep -q -- '-report' || { echo "encore-sfi -h: missing -report" >&2; exit 1; }
"$tmp/encore-sfi" -h 2>&1 | grep -q -- '-chrometrace' || { echo "encore-sfi -h: missing -chrometrace" >&2; exit 1; }
"$tmp/encore-bench" -h 2>&1 | grep -q -- '-chrometrace' || { echo "encore-bench -h: missing -chrometrace" >&2; exit 1; }
"$tmp/encore" -h 2>&1 | grep -q -- '-chrometrace' || { echo "encore -h: missing -chrometrace" >&2; exit 1; }
"$tmp/encore" -h 2>&1 | grep -q -- '-engine' || { echo "encore -h: missing -engine" >&2; exit 1; }
"$tmp/encore-sfi" -h 2>&1 | grep -q -- '-engine' || { echo "encore-sfi -h: missing -engine" >&2; exit 1; }
"$tmp/encore-bench" -h 2>&1 | grep -q -- '-engine' || { echo "encore-bench -h: missing -engine" >&2; exit 1; }
"$tmp/encore-serve" -h 2>&1 | grep -q -- '-max-inflight' || { echo "encore-serve -h: missing -max-inflight" >&2; exit 1; }
"$tmp/encore-serve" -h 2>&1 | grep -q -- '-drain-timeout' || { echo "encore-serve -h: missing -drain-timeout" >&2; exit 1; }
"$tmp/encore-sfi" -h 2>&1 | grep -q -- '-stats' || { echo "encore-sfi -h: missing -stats" >&2; exit 1; }
"$tmp/encore-sfi" -h 2>&1 | grep -q -- '-prom' || { echo "encore-sfi -h: missing -prom" >&2; exit 1; }
"$tmp/encore" -h 2>&1 | grep -q -- '-prom' || { echo "encore -h: missing -prom" >&2; exit 1; }
"$tmp/encore-bench" -h 2>&1 | grep -q -- '-prom' || { echo "encore-bench -h: missing -prom" >&2; exit 1; }
"$tmp/encore-serve" -h 2>&1 | grep -q -- '-pprof' || { echo "encore-serve -h: missing -pprof" >&2; exit 1; }
"$tmp/encore-serve" -h 2>&1 | grep -q -- '-log-requests' || { echo "encore-serve -h: missing -log-requests" >&2; exit 1; }
"$tmp/encore-serve" -h 2>&1 | grep -q -- '-stats-every' || { echo "encore-serve -h: missing -stats-every" >&2; exit 1; }
"$tmp/encore-sfi" -h 2>&1 | grep -q -- '-shard' || { echo "encore-sfi -h: missing -shard" >&2; exit 1; }
"$tmp/encore-sfi" -h 2>&1 | grep -q -- '-merge' || { echo "encore-sfi -h: missing -merge" >&2; exit 1; }
"$tmp/encore-sfi" -h 2>&1 | grep -q -- '-adaptive' || { echo "encore-sfi -h: missing -adaptive" >&2; exit 1; }
"$tmp/encore-sfi" -h 2>&1 | grep -q -- '-reuse' || { echo "encore-sfi -h: missing -reuse" >&2; exit 1; }
"$tmp/encore-serve" -h 2>&1 | grep -q -- '-adaptive-ci' || { echo "encore-serve -h: missing -adaptive-ci" >&2; exit 1; }
"$tmp/encore-sfi" -h 2>&1 | grep -q -- '-checkpoints' || { echo "encore-sfi -h: missing -checkpoints" >&2; exit 1; }
"$tmp/encore-serve" -h 2>&1 | grep -q -- '-checkpoints' || { echo "encore-serve -h: missing -checkpoints" >&2; exit 1; }

echo "==> smoke: encore"
"$tmp/encore" -app rawcaudio -metrics "$tmp/encore.json" > /dev/null
grep -q '"compile.runs"' "$tmp/encore.json" || { echo "encore -metrics: no compile.runs counter" >&2; exit 1; }

echo "==> smoke: encore-sfi"
"$tmp/encore-sfi" -app rawdaudio -trials 20 -progress -metrics "$tmp/sfi.json" > /dev/null 2>"$tmp/sfi.progress"
grep -q '"sfi.trials"' "$tmp/sfi.json" || { echo "encore-sfi -metrics: no sfi.trials counter" >&2; exit 1; }
grep -q 'campaign' "$tmp/sfi.progress" || { echo "encore-sfi -progress: no progress line on stderr" >&2; exit 1; }

echo "==> smoke: encore-sfi trial ledger + attribution report"
"$tmp/encore-sfi" -app rawcaudio -trials 5 -trace - > "$tmp/trace.jsonl" 2>/dev/null
lines=$(wc -l < "$tmp/trace.jsonl")
[ "$lines" -eq 6 ] || { echo "encore-sfi -trace -: want 6 JSONL lines (1 header + 5 trials), got $lines" >&2; exit 1; }
grep -q '"type":"campaign"' "$tmp/trace.jsonl" || { echo "encore-sfi -trace: no campaign header" >&2; exit 1; }
"$tmp/encore-sfi" -report "$tmp/trace.jsonl" > "$tmp/report.txt"
grep -q 'measured same-instance' "$tmp/report.txt" || { echo "encore-sfi -report: no coverage line" >&2; exit 1; }
grep -q '|err|' "$tmp/report.txt" || { echo "encore-sfi -report: no abs-error column" >&2; exit 1; }
"$tmp/encore-sfi" -trace "$tmp/trace2.jsonl" -app rawcaudio -trials 5 > /dev/null
cmp -s "$tmp/trace.jsonl" "$tmp/trace2.jsonl" || { echo "encore-sfi -trace: not byte-identical across runs" >&2; exit 1; }

echo "==> smoke: closure engine identical across the full workload suite"
# The per-app report covers measured overhead, checkpoint traffic, and
# region selection for all 23 workloads: any divergence between engines
# in counting, checkpointing, or profiling shows up as a report diff.
"$tmp/encore" -engine fast > "$tmp/report-fast.txt"
"$tmp/encore" -engine closure > "$tmp/report-closure.txt"
cmp -s "$tmp/report-fast.txt" "$tmp/report-closure.txt" || {
	echo "encore: closure engine report differs from fast engine:" >&2
	diff "$tmp/report-fast.txt" "$tmp/report-closure.txt" >&2 || true
	exit 1
}

echo "==> smoke: closure engine reproduces the SFI trial ledger byte for byte"
"$tmp/encore-sfi" -app rawcaudio -trials 5 -engine closure -trace "$tmp/trace-closure.jsonl" > /dev/null
cmp -s "$tmp/trace.jsonl" "$tmp/trace-closure.jsonl" || { echo "encore-sfi -engine closure: trial ledger differs from fast engine" >&2; exit 1; }

echo "==> smoke: checkpoint-ladder ledger byte-identical to full-replay"
# Fork-from-checkpoint trials restore a golden-run snapshot instead of
# replaying the whole prefix; the trial ledger must not move by a byte
# between a ladder-free run and a dense ladder.
"$tmp/encore-sfi" -app rawcaudio -trials 20 -seed 3 -checkpoints 0 -trace "$tmp/ck0.jsonl" > /dev/null
"$tmp/encore-sfi" -app rawcaudio -trials 20 -seed 3 -checkpoints 8 -trace "$tmp/ck8.jsonl" > /dev/null
cmp -s "$tmp/ck0.jsonl" "$tmp/ck8.jsonl" || {
	echo "encore-sfi -checkpoints: ledger differs between 0 and 8:" >&2
	diff "$tmp/ck0.jsonl" "$tmp/ck8.jsonl" >&2 || true
	exit 1
}

echo "==> smoke: encore-sfi -stats byte-identical across workers and engines"
# The online estimator snapshot must not depend on trial parallelism or
# the execution engine — only on the (workload, config, seed) prefix.
"$tmp/encore-sfi" -app rawcaudio -trials 12 -workers 1 -stats "$tmp/stats-w1.json" > /dev/null
"$tmp/encore-sfi" -app rawcaudio -trials 12 -workers 4 -stats "$tmp/stats-w4.json" > /dev/null
"$tmp/encore-sfi" -app rawcaudio -trials 12 -workers 4 -engine closure -stats "$tmp/stats-closure.json" > /dev/null
cmp -s "$tmp/stats-w1.json" "$tmp/stats-w4.json" || { echo "encore-sfi -stats: differs between -workers 1 and 4" >&2; exit 1; }
cmp -s "$tmp/stats-w1.json" "$tmp/stats-closure.json" || { echo "encore-sfi -stats: differs between fast and closure engines" >&2; exit 1; }
grep -q '"worst_ci_half_width"' "$tmp/stats-w1.json" || { echo "encore-sfi -stats: no worst_ci_half_width field" >&2; exit 1; }

echo "==> smoke: 3-shard merged ledger+stats byte-identical to single process"
# Deterministic trial-space sharding: three -shard i/3 runs of the same
# (workload, trials, seed) campaign, merged with -merge, must reproduce
# the single-process ledger and stats snapshot byte for byte.
"$tmp/encore-sfi" -app rawdaudio -trials 30 -seed 4 -trace "$tmp/whole.jsonl" -stats "$tmp/whole-stats.json" > /dev/null
for i in 1 2 3; do
	"$tmp/encore-sfi" -app rawdaudio -trials 30 -seed 4 -shard "$i/3" -trace "$tmp/shard$i.jsonl" > /dev/null
done
"$tmp/encore-sfi" -merge -trace "$tmp/merged.jsonl" -stats "$tmp/merged-stats.json" \
	"$tmp/shard2.jsonl" "$tmp/shard3.jsonl" "$tmp/shard1.jsonl"
cmp -s "$tmp/whole.jsonl" "$tmp/merged.jsonl" || {
	echo "encore-sfi -merge: merged ledger differs from single-process ledger:" >&2
	diff "$tmp/whole.jsonl" "$tmp/merged.jsonl" >&2 || true
	exit 1
}
cmp -s "$tmp/whole-stats.json" "$tmp/merged-stats.json" || {
	echo "encore-sfi -merge: merged stats differ from single-process stats:" >&2
	diff "$tmp/whole-stats.json" "$tmp/merged-stats.json" >&2 || true
	exit 1
}

echo "==> smoke: adaptive stopping deterministic across workers and engines"
# The stop decision folds at round barriers from the global record
# stream, so the elided ledger must not depend on parallelism or engine.
"$tmp/encore-sfi" -app g721encode -trials 300 -seed 7 -adaptive -adaptive-ci 0.12 -trace "$tmp/adapt-a.jsonl" > "$tmp/adapt-a.txt"
"$tmp/encore-sfi" -app g721encode -trials 300 -seed 7 -adaptive -adaptive-ci 0.12 -workers 1 -engine ref -trace "$tmp/adapt-b.jsonl" > /dev/null
cmp -s "$tmp/adapt-a.jsonl" "$tmp/adapt-b.jsonl" || {
	echo "encore-sfi -adaptive: ledger differs between default pool and -workers 1 -engine ref" >&2
	exit 1
}
grep -q 'adaptive g721encode: executed' "$tmp/adapt-a.txt" || { echo "encore-sfi -adaptive: no adaptive summary line" >&2; exit 1; }

echo "==> smoke: Prometheus exposition passes promlint"
"$tmp/encore-sfi" -app rawcaudio -trials 5 -prom "$tmp/sfi.prom" > /dev/null
go run scripts/promlint.go "$tmp/sfi.prom" || { echo "encore-sfi -prom: promlint failed" >&2; exit 1; }
"$tmp/encore" -app rawcaudio -prom "$tmp/encore.prom" > /dev/null
go run scripts/promlint.go "$tmp/encore.prom" || { echo "encore -prom: promlint failed" >&2; exit 1; }

echo "==> smoke: encore-serve served ledger == batch ledger"
# Boot the daemon on an ephemeral port, submit the same campaign the
# -trace smoke above ran in batch (rawcaudio, 5 trials, seed 1, dmax
# 100), and cmp the streamed ledger against the batch bytes. Then check
# /metrics and graceful SIGTERM drain.
"$tmp/encore-serve" -addr 127.0.0.1:0 2> "$tmp/serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
	addr=$(sed -n 's#.*listening on http://##p' "$tmp/serve.log" | head -1)
	[ -n "$addr" ] && break
	sleep 0.1
done
[ -n "$addr" ] || { echo "encore-serve: never reported a listen address" >&2; cat "$tmp/serve.log" >&2; exit 1; }
cid=$(curl -sS -X POST "http://$addr/v1/campaigns" \
	-H 'Content-Type: application/json' \
	-d '{"workload":"rawcaudio","trials":5,"seed":1,"dmax":100}' \
	| sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$cid" ] || { echo "encore-serve: submit returned no campaign id" >&2; exit 1; }
curl -sS "http://$addr/v1/campaigns/$cid/ledger" > "$tmp/served.jsonl"
cmp -s "$tmp/trace.jsonl" "$tmp/served.jsonl" || {
	echo "encore-serve: served ledger differs from batch encore-sfi -trace:" >&2
	diff "$tmp/trace.jsonl" "$tmp/served.jsonl" >&2 || true
	exit 1
}
curl -sS "http://$addr/v1/campaigns/$cid" > "$tmp/serve-status.json"
grep -q '"state":"done"' "$tmp/serve-status.json" || { echo "encore-serve: campaign did not settle done" >&2; exit 1; }
curl -sS "http://$addr/metrics" > "$tmp/serve-metrics.json"
grep -q '"serve.campaigns.completed"' "$tmp/serve-metrics.json" || { echo "encore-serve: /metrics missing serve counters" >&2; exit 1; }
curl -sS "http://$addr/v1/campaigns/$cid/stats" > "$tmp/serve-stats.json"
grep -q '"regions"' "$tmp/serve-stats.json" || { echo "encore-serve: /stats missing regions array" >&2; exit 1; }
grep -q '"trials":5' "$tmp/serve-stats.json" || { echo "encore-serve: /stats trials != 5" >&2; exit 1; }
curl -sS "http://$addr/metrics?format=prom" > "$tmp/serve.prom"
grep -q '^# TYPE encore_serve_campaigns_accepted counter' "$tmp/serve.prom" || { echo "encore-serve: prom exposition missing serve counters" >&2; exit 1; }
go run scripts/promlint.go "$tmp/serve.prom" || { echo "encore-serve: /metrics?format=prom failed promlint" >&2; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "encore-serve: non-zero exit on SIGTERM drain" >&2; cat "$tmp/serve.log" >&2; exit 1; }
grep -q 'draining' "$tmp/serve.log" || { echo "encore-serve: no drain log line on SIGTERM" >&2; exit 1; }
grep -q '"event":"campaign_settled"' "$tmp/serve.log" || { echo "encore-serve: no campaign_settled summary line" >&2; exit 1; }

echo "==> smoke: encore-bench"
"$tmp/encore-bench" -exp fig5 -apps rawcaudio,rawdaudio -quick -metrics "$tmp/bench.json" > /dev/null
grep -q '"bench/fig5"' "$tmp/bench.json" || { echo "encore-bench -metrics: no bench/fig5 span" >&2; exit 1; }

echo "==> smoke: ENCORE_WORKERS determinism (counters identical at 1 vs default)"
# Counter values (compiles, regions, interpreter totals) must not depend
# on the worker count; spans carry wall-clock and are excluded.
ENCORE_WORKERS=1 "$tmp/encore-bench" -exp fig5 -apps rawcaudio,rawdaudio -quick -metrics "$tmp/bench-w1.json" > /dev/null
sed -n '/"counters"/,/\]/p' "$tmp/bench.json" > "$tmp/counters-default.txt"
sed -n '/"counters"/,/\]/p' "$tmp/bench-w1.json" > "$tmp/counters-w1.txt"
cmp -s "$tmp/counters-default.txt" "$tmp/counters-w1.txt" || {
	echo "encore-bench: counters differ between ENCORE_WORKERS=1 and default:" >&2
	diff "$tmp/counters-default.txt" "$tmp/counters-w1.txt" >&2 || true
	exit 1
}

echo "OK"
