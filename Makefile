GO ?= go
FUZZTIME ?= 10s

.PHONY: build test bench fuzz-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

# Short-budget run of the generative oracles (internal/progen): each fuzz
# target replays its checked-in corpus and then explores for FUZZTIME.
# Raise the budget for a deeper hunt: make fuzz-smoke FUZZTIME=5m
fuzz-smoke:
	$(GO) test ./internal/progen -run '^$$' -fuzz '^FuzzIdempotence$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/progen -run '^$$' -fuzz '^FuzzRecovery$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/progen -run '^$$' -fuzz '^FuzzEngines$$' -fuzztime $(FUZZTIME)

# Full health gate: gofmt, vet, build, tests, the race detector over the
# concurrent packages, and the fuzz smoke. See scripts/check.sh.
check:
	sh scripts/check.sh
