GO ?= go

.PHONY: build test bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

# Full health gate: gofmt, vet, build, tests, and the race detector over
# the concurrent packages. See scripts/check.sh.
check:
	sh scripts/check.sh
