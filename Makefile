GO ?= go
FUZZTIME ?= 10s
BENCH ?= BENCH_pr10.json

.PHONY: build test bench fuzz-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs the repository micro-benchmarks and then regenerates the
# perf-trajectory record: $(BENCH) is the encore-bench -json report
# (quick mode), whose compile_ns/analyze_ns/finalize_ns fields expose the
# staged pipeline's analysis-reuse ratio across the full experiment run.
# Override the output with e.g. `make bench BENCH=BENCH_pr7.json` so each
# PR's record lands beside its predecessors instead of overwriting them.
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) test ./internal/core ./internal/idem -run '^$$' -bench '.' -benchmem
	$(GO) run ./cmd/encore-bench -quick -json $(BENCH) > /dev/null

# Short-budget run of the generative oracles (internal/progen): each fuzz
# target replays its checked-in corpus and then explores for FUZZTIME.
# Raise the budget for a deeper hunt: make fuzz-smoke FUZZTIME=5m
fuzz-smoke:
	$(GO) test ./internal/progen -run '^$$' -fuzz '^FuzzIdempotence$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/progen -run '^$$' -fuzz '^FuzzRecovery$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/progen -run '^$$' -fuzz '^FuzzEngines$$' -fuzztime $(FUZZTIME)

# Full health gate: gofmt, vet, build, tests, the race detector over the
# concurrent packages, and the fuzz smoke. See scripts/check.sh.
check:
	sh scripts/check.sh
