GO ?= go
FUZZTIME ?= 10s

.PHONY: build test bench fuzz-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs the repository micro-benchmarks and then regenerates the
# perf-trajectory record: BENCH_pr5.json is the encore-bench -json report
# (quick mode), whose compile_ns/analyze_ns/finalize_ns fields expose the
# staged pipeline's analysis-reuse ratio across the full experiment run.
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) test ./internal/core ./internal/idem -run '^$$' -bench '.' -benchmem
	$(GO) run ./cmd/encore-bench -quick -json BENCH_pr5.json > /dev/null

# Short-budget run of the generative oracles (internal/progen): each fuzz
# target replays its checked-in corpus and then explores for FUZZTIME.
# Raise the budget for a deeper hunt: make fuzz-smoke FUZZTIME=5m
fuzz-smoke:
	$(GO) test ./internal/progen -run '^$$' -fuzz '^FuzzIdempotence$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/progen -run '^$$' -fuzz '^FuzzRecovery$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/progen -run '^$$' -fuzz '^FuzzEngines$$' -fuzztime $(FUZZTIME)

# Full health gate: gofmt, vet, build, tests, the race detector over the
# concurrent packages, and the fuzz smoke. See scripts/check.sh.
check:
	sh scripts/check.sh
