// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation (§5) through the experiments harness. Each bench
// reports the headline number of its exhibit as a custom metric alongside
// wall-clock cost, and the -v output carries the full table. Run:
//
//	go test -bench=. -benchmem
//
// Individual exhibits: -bench=BenchmarkFig8FaultCoverage etc.
package repro_test

import (
	"fmt"
	"io"
	"os"
	"testing"

	"encore/internal/core"
	"encore/internal/experiments"
	"encore/internal/interp"
	"encore/internal/sfi"
	"encore/internal/stats"
	"encore/internal/workload"
)

func harness() *experiments.Harness {
	return &experiments.Harness{Quick: testing.Short()}
}

func render(b *testing.B, r interface{ Render(io.Writer) }) {
	b.Helper()
	if testing.Verbose() {
		r.Render(os.Stdout)
	}
}

// BenchmarkFig1TraceIdempotence regenerates Figure 1: the fraction of
// dynamic traces that are inherently idempotent per window length.
func BenchmarkFig1TraceIdempotence(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		r, err := h.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			mean10, mean1000 := 0.0, 0.0
			for _, row := range r.Rows {
				mean10 += row.Fractions[10]
				mean1000 += row.Fractions[1000]
			}
			n := float64(len(r.Rows))
			b.ReportMetric(100*mean10/n, "idem10_%")
			b.ReportMetric(100*mean1000/n, "idem1000_%")
			render(b, r)
		}
	}
}

// BenchmarkTable1Baselines regenerates Table 1: enterprise vs
// architectural vs Encore recovery attributes, measured in-simulator.
func BenchmarkTable1Baselines(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		r, err := h.Table1("175.vpr")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(r.Rows[0].StorageBytes), "enterpriseB")
			b.ReportMetric(float64(r.Rows[1].StorageBytes), "archB")
			b.ReportMetric(float64(r.Rows[2].StorageBytes), "encoreB")
			render(b, r)
		}
	}
}

// BenchmarkFig5RegionIdempotence regenerates Figure 5: inherent region
// idempotence as a function of Pmin ∈ {∅, 0.0, 0.1, 0.25}.
func BenchmarkFig5RegionIdempotence(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		r, err := h.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*r.MeanIdempotent(0), "idemNoPrune_%")
			b.ReportMetric(100*r.MeanIdempotent(1), "idemPmin0_%")
			render(b, r)
		}
	}
}

// BenchmarkFig6DynamicBreakdown regenerates Figure 6: execution time in
// idempotent, checkpointed, and unprotected regions.
func BenchmarkFig6DynamicBreakdown(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		r, err := h.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			idem, ckpt := 0.0, 0.0
			for _, row := range r.Rows {
				idem += row.B.Idempotent
				ckpt += row.B.Ckpt
			}
			n := float64(len(r.Rows))
			b.ReportMetric(100*idem/n, "idem_%")
			b.ReportMetric(100*ckpt/n, "ckpt_%")
			render(b, r)
		}
	}
}

// BenchmarkFig7aRuntimeOverhead regenerates Figure 7a: dynamic-instruction
// overhead under static vs optimistic alias analysis.
func BenchmarkFig7aRuntimeOverhead(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		r, err := h.Fig7a()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*r.MeanStatic(), "static_%")
			opt := 0.0
			for _, row := range r.Rows {
				opt += row.Optimistic
			}
			b.ReportMetric(100*opt/float64(len(r.Rows)), "optimistic_%")
			render(b, r)
		}
	}
}

// BenchmarkFig7bStorageOverhead regenerates Figure 7b: checkpoint storage
// bytes per region, split into memory and register contributions.
func BenchmarkFig7bStorageOverhead(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		r, err := h.Fig7b()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			mem, reg := 0.0, 0.0
			for _, row := range r.Rows {
				mem += row.MemBytes
				reg += row.RegBytes
			}
			n := float64(len(r.Rows))
			b.ReportMetric(mem/n, "memB/region")
			b.ReportMetric(reg/n, "regB/region")
			render(b, r)
		}
	}
}

// BenchmarkFig8FaultCoverage regenerates Figure 8: full-system fault
// coverage (masking Monte Carlo + α-scaled recoverability) at detection
// latencies 1000, 100, and 10 instructions.
func BenchmarkFig8FaultCoverage(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		r, err := h.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*r.MeanTotal(0), "covD1000_%")
			b.ReportMetric(100*r.MeanTotal(1), "covD100_%")
			b.ReportMetric(100*r.MeanTotal(2), "covD10_%")
			render(b, r)
		}
	}
}

// BenchmarkAblationEta sweeps the Equation-5 merge threshold.
func BenchmarkAblationEta(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		r, err := h.AblationEta(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.Rows[0].MeanRegions, "regions@eta0")
			b.ReportMetric(r.Rows[len(r.Rows)-1].MeanRegions, "regions@etaMax")
			render(b, r)
		}
	}
}

// BenchmarkAblationBudget sweeps the overhead budget — the paper's
// reliability-vs-performance dial (§3.4.2).
func BenchmarkAblationBudget(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		r, err := h.AblationBudget(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := r.Rows[len(r.Rows)-1]
			b.ReportMetric(100*last.MeanRecov, "recov@maxBudget_%")
			render(b, r)
		}
	}
}

// BenchmarkAblationSignature compares Encore against software
// path-signature tracking, the §2.1 alternative.
func BenchmarkAblationSignature(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		r, err := h.AblationSignature()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			enc, sig := 0.0, 0.0
			for _, row := range r.Rows {
				enc += row.EncoreOverhead
				sig += row.SignatureOverhead
			}
			n := float64(len(r.Rows))
			b.ReportMetric(100*enc/n, "encore_%")
			b.ReportMetric(100*sig/n, "signature_%")
			render(b, r)
		}
	}
}

// BenchmarkAblationInputShift measures train-vs-ref survival: the
// statistical-idempotence risk study behind §3.4.1's "no measurable
// risk" claim.
func BenchmarkAblationInputShift(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		r, err := h.AblationInputShift(7)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			train, ref := 0.0, 0.0
			for _, row := range r.Rows {
				train += row.TrainRecovered
				ref += row.RefRecovered
			}
			n := float64(len(r.Rows))
			b.ReportMetric(100*train/n, "train_%")
			b.ReportMetric(100*ref/n, "ref_%")
			render(b, r)
		}
	}
}

// BenchmarkEndToEndSFI measures the cost of the real injected-fault
// campaign (the validation companion to Figure 8's analytical numbers) on
// one representative benchmark per suite.
func BenchmarkEndToEndSFI(b *testing.B) {
	for _, name := range []string{"175.vpr", "172.mgrid", "rawcaudio"} {
		b.Run(name, func(b *testing.B) {
			sp, err := workload.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			art := sp.Build()
			res, err := core.Compile(art.Mod, core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			trials := 100
			if testing.Short() {
				trials = 25
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				camp, err := sfi.RunCampaign(res.Mod, res.Metas, art.Outputs, sfi.CampaignConfig{
					Trials: trials, Seed: uint64(i + 1), Dmax: 100,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(100*camp.RecoveredRate(), "recovered_%")
				}
			}
		})
	}
}

// BenchmarkCompilePipeline measures the Encore compiler itself (profiling,
// analysis, region formation, selection, instrumentation) per benchmark
// suite representative.
func BenchmarkCompilePipeline(b *testing.B) {
	for _, name := range []string{"164.gzip", "183.equake", "mpeg2enc"} {
		b.Run(name, func(b *testing.B) {
			sp, err := workload.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				art := sp.Build()
				if _, err := core.Compile(art.Mod, core.DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInterpreter measures raw simulator throughput, the substrate
// cost every experiment pays.
func BenchmarkInterpreter(b *testing.B) {
	sp, err := workload.ByName("256.bzip2")
	if err != nil {
		b.Fatal(err)
	}
	art := sp.Build()
	m := interp.New(art.Mod, interp.Config{})
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		m.Reset()
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
		instrs += m.Count
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkInterpDispatch compares the pre-decoded fast dispatch loop
// against the per-instruction reference loop on the same workload, plain
// and with profiling enabled. Profiling is where the engines diverge
// most: the fast loop bumps dense []int64 counters at block retire while
// the reference loop updates map[*ir.Block] entries per block.
func BenchmarkInterpDispatch(b *testing.B) {
	sp, err := workload.ByName("256.bzip2")
	if err != nil {
		b.Fatal(err)
	}
	art := sp.Build()
	for _, mode := range []struct {
		name string
		cfg  interp.Config
	}{
		{"fast", interp.Config{}},
		{"reference", interp.Config{Reference: true}},
		{"closure", interp.Config{Engine: interp.EngineClosure}},
		{"fast-profiled", interp.Config{Profile: true}},
		{"reference-profiled", interp.Config{Profile: true, Reference: true}},
		{"closure-profiled", interp.Config{Profile: true, Engine: interp.EngineClosure}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			m := interp.New(art.Mod, mode.cfg)
			var instrs int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Reset()
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
				instrs += m.Count
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

// BenchmarkClosureDispatch isolates the closure-compiled engine: one-time
// AOT compilation into threaded-code closures, then repeated runs over
// the pre-built step arrays, plain and with dense profiling. Compare the
// Minstr/s metric against BenchmarkInterpDispatch's fast/reference modes
// — the closure engine's whole point is removing the per-instruction
// opcode switch from the quiescent path.
func BenchmarkClosureDispatch(b *testing.B) {
	sp, err := workload.ByName("256.bzip2")
	if err != nil {
		b.Fatal(err)
	}
	art := sp.Build()
	for _, mode := range []struct {
		name string
		cfg  interp.Config
	}{
		{"plain", interp.Config{Engine: interp.EngineClosure}},
		{"profiled", interp.Config{Profile: true, Engine: interp.EngineClosure}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			m := interp.New(art.Mod, mode.cfg)
			var instrs int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Reset()
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
				instrs += m.Count
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

// BenchmarkSFITrialThroughput measures fault-injection throughput in
// trials per second — each trial is a golden-checked full run with one
// injected fault — for each execution engine, with the checkpoint
// ladder off (ckpt0: every trial replays the whole golden prefix) and
// at the default ladder (ckpt16: trials fork from the deepest snapshot
// below their injection point). Campaign results are invariant across
// all of these, so the spread between sub-benchmarks is pure simulator
// speed: this is the quantity Figure 8's Monte Carlo and the end-to-end
// SFI campaigns pay for.
func BenchmarkSFITrialThroughput(b *testing.B) {
	sp, err := workload.ByName("175.vpr")
	if err != nil {
		b.Fatal(err)
	}
	art := sp.Build()
	res, err := core.Compile(art.Mod, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	const trials = 50
	for _, engine := range []interp.Engine{interp.EngineFast, interp.EngineRef, interp.EngineClosure} {
		for _, ckpt := range []int{0, 16} {
			b.Run(fmt.Sprintf("%s/ckpt%d", engine, ckpt), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sfi.RunCampaign(res.Mod, res.Metas, art.Outputs, sfi.CampaignConfig{
						Trials: trials, Seed: uint64(i + 1), Dmax: 100, Engine: engine,
						Checkpoints: ckpt,
					}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
			})
		}
	}
}

// BenchmarkSFITrialThroughputStats measures the cost of attaching the
// online per-region estimator (internal/stats) to a campaign. The two
// sub-benchmarks run the identical campaign with and without a StatsSink;
// the trials/s spread between them is the telemetry overhead, which the
// PR 8 budget holds under 2% (see EXPERIMENTS.md).
func BenchmarkSFITrialThroughputStats(b *testing.B) {
	sp, err := workload.ByName("175.vpr")
	if err != nil {
		b.Fatal(err)
	}
	art := sp.Build()
	res, err := core.Compile(art.Mod, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var regions []sfi.RegionInfo
	for _, rc := range res.RegionCoverages(100) {
		regions = append(regions, sfi.RegionInfo{
			ID: rc.ID, Fn: rc.Fn, Header: rc.Header, Class: rc.Class.String(),
			Selected: rc.Selected, DynFrac: rc.DynFrac,
			InstanceLen: rc.InstanceLen, Alpha: rc.Alpha,
		})
	}
	const trials = 50
	for _, withStats := range []bool{false, true} {
		name := "nostats"
		if withStats {
			name = "stats"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sfi.CampaignConfig{
					Trials: trials, Seed: uint64(i + 1), Dmax: 100,
					Regions: regions,
				}
				if withStats {
					cfg.Stats = stats.New()
				}
				if _, err := sfi.RunCampaign(res.Mod, res.Metas, art.Outputs, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkResetDirtyRange measures Machine.Reset on a deliberately
// oversized memory image. The dirty-range watermark makes reset cost
// proportional to the words the previous run actually touched, not to
// MemWords; the words/reset metric reports that footprint.
func BenchmarkResetDirtyRange(b *testing.B) {
	sp, err := workload.ByName("rawcaudio")
	if err != nil {
		b.Fatal(err)
	}
	art := sp.Build()
	m := interp.New(art.Mod, interp.Config{MemWords: 1 << 24})
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var words int64
	for i := 0; i < b.N; i++ {
		m.Reset()
		words += m.LastResetWords()
	}
	b.ReportMetric(float64(words)/float64(b.N), "words/reset")
}

// BenchmarkSnapshotRestore measures Machine.Restore from a mid-run
// snapshot on a deliberately oversized memory image. Like Reset, the
// cost is proportional to the dirty delta — the words the previous
// trial touched plus the snapshot's recorded footprint — not to
// MemWords; the words/restore metric reports that delta.
func BenchmarkSnapshotRestore(b *testing.B) {
	sp, err := workload.ByName("rawcaudio")
	if err != nil {
		b.Fatal(err)
	}
	art := sp.Build()
	capm := interp.New(art.Mod, interp.Config{MemWords: 1 << 24})
	if _, err := capm.Run(); err != nil {
		b.Fatal(err)
	}
	_, lad, err := capm.RunWithSnapshots([]int64{capm.Count / 2})
	if err != nil {
		b.Fatal(err)
	}
	snap := lad.Deepest()
	m := interp.New(art.Mod, interp.Config{MemWords: 1 << 24})
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var words int64
	for i := 0; i < b.N; i++ {
		if err := m.Restore(snap); err != nil {
			b.Fatal(err)
		}
		words += m.LastRestoreWords()
	}
	b.ReportMetric(float64(words)/float64(b.N), "words/restore")
}
