// ADPCM example: protect a realistic media codec (the rawcaudio IMA ADPCM
// coder) end to end, sweeping the overhead budget to show the paper's
// central tradeoff — how much recoverability a given performance budget
// buys (§3.4.2) — and validating the analytical coverage model against
// real injected faults.
package main

import (
	"fmt"
	"log"

	"encore/internal/core"
	"encore/internal/sfi"
	"encore/internal/workload"
)

func main() {
	sp, err := workload.ByName("rawcaudio")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("budget sweep on rawcaudio (IMA ADPCM coder):")
	fmt.Println("budget   overhead   exec recoverable   predicted cov (Dmax=100)")
	for _, budget := range []float64{0.02, 0.05, 0.10, 0.20, 0.40} {
		art := sp.Build()
		cfg := core.DefaultConfig()
		cfg.Budget = budget
		res, err := core.Compile(art.Mod, cfg)
		if err != nil {
			log.Fatal(err)
		}
		b := res.DynBreakdown()
		cov := res.RecoverableCoverage(100)
		fmt.Printf("%5.0f%%    %6.2f%%   %10.1f%%        %.1f%%\n",
			budget*100, res.MeasuredOverhead*100,
			b.Recoverable()*100, (cov.RecovIdem+cov.RecovCkpt)*100)
	}

	// Validate the Equation-7 prediction with real fault injection at the
	// default budget.
	art := sp.Build()
	res, err := core.Compile(art.Mod, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	cov := res.RecoverableCoverage(100)
	camp, err := sfi.RunCampaign(res.Mod, res.Metas, art.Outputs, sfi.CampaignConfig{
		Trials: 400, Seed: 11, Dmax: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nend-to-end SFI (400 faults, Dmax=100):\n")
	fmt.Printf("  recovered to golden output: %d\n", camp.Counts[sfi.Recovered])
	fmt.Printf("  benign (masked):            %d\n", camp.Counts[sfi.Benign])
	fmt.Printf("  rollback missed instance:   %d\n", camp.Counts[sfi.RecoveredWrong])
	fmt.Printf("  silent corruption:          %d\n", camp.Counts[sfi.SilentCorruption])
	fmt.Printf("  crashed:                    %d\n", camp.Counts[sfi.Crashed])
	fmt.Printf("  same-instance rollbacks:    %d (analytical model predicts ~%.0f)\n",
		camp.SameInstance, (cov.RecovIdem+cov.RecovCkpt)*float64(camp.Trials))
}
