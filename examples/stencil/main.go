// Stencil example: run the Encore pipeline on a floating-point multigrid
// kernel (172.mgrid) under both alias-analysis modes, showing why
// streaming FP code is the best case for idempotence-based recovery
// (paper Figures 5–7) and how the detection-latency scaling factor α
// (Equation 7) varies with region size.
package main

import (
	"fmt"
	"log"

	"encore/internal/alias"
	"encore/internal/core"
	"encore/internal/model"
	"encore/internal/workload"
)

func main() {
	sp, err := workload.ByName("172.mgrid")
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []alias.Mode{alias.Static, alias.Optimistic} {
		art := sp.Build()
		cfg := core.DefaultConfig()
		cfg.AliasMode = mode
		res, err := core.Compile(art.Mod, cfg)
		if err != nil {
			log.Fatal(err)
		}
		cc := res.ClassCounts()
		fmt.Printf("%s alias analysis: %d/%d candidate regions idempotent, overhead %.2f%%\n",
			mode, cc.Idempotent, cc.Total(), res.MeasuredOverhead*100)
	}

	// Per-region α: the probability a fault striking the region is
	// detected before control leaves it, for each paper latency.
	art := sp.Build()
	res, err := core.Compile(art.Mod, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nregion                                instance(instrs)  α(D=1000)  α(D=100)  α(D=10)")
	for _, r := range res.Regions {
		if !r.Selected || r.DynInstrs == 0 {
			continue
		}
		n := r.InstanceLen()
		fmt.Printf("%-36s  %15.0f  %9.3f  %8.3f  %7.3f\n",
			r.Fn.Name+"/"+r.Header.Name, n,
			model.Alpha(n, 1000), model.Alpha(n, 100), model.Alpha(n, 10))
	}
	for _, d := range []float64{1000, 100, 10} {
		cov := res.RecoverableCoverage(d)
		fmt.Printf("whole-program recoverable coverage at Dmax=%-5.0f: %.1f%%\n",
			d, (cov.RecovIdem+cov.RecovCkpt)*100)
	}
}
