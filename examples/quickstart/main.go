// Quickstart: build a small program against the IR, run the full Encore
// pipeline on it, then inject a transient fault and watch the instrumented
// binary roll back and produce the correct answer anyway.
package main

import (
	"fmt"
	"log"

	"encore/internal/core"
	"encore/internal/interp"
	"encore/internal/ir"
)

// buildProgram constructs a toy kernel with a deliberate WAR hazard: it
// sums an input array into a running in-memory accumulator (read-modify-
// write on every iteration), then scales the input into a separate output
// array (pure, inherently idempotent).
func buildProgram() (*ir.Module, *ir.Global) {
	mod := ir.NewModule("quickstart")
	const n = 64
	in := mod.NewGlobal("input", n)
	out := mod.NewGlobal("output", n)
	acc := mod.NewGlobal("accumulator", 1)
	for i := int64(0); i < n; i++ {
		in.Init = append(in.Init, i*3+1)
	}

	f := mod.NewFunc("main", 0)
	entry := f.NewBlock("entry")
	inB, outB, accB := f.NewReg(), f.NewReg(), f.NewReg()
	entry.GlobalAddr(inB, in)
	entry.GlobalAddr(outB, out)
	entry.GlobalAddr(accB, acc)

	i := f.NewReg()
	entry.Const(i, 0)
	head := f.NewBlock("loop.head")
	body := f.NewBlock("loop.body")
	exit := f.NewBlock("loop.exit")
	entry.Jmp(head)

	bound, cond := f.NewReg(), f.NewReg()
	head.Const(bound, n)
	head.Bin(ir.OpLt, cond, i, bound)
	head.Br(cond, body, exit)

	v, a, addr := f.NewReg(), f.NewReg(), f.NewReg()
	body.Add(addr, inB, i)
	body.Load(v, addr, 0)
	// The WAR hazard: accumulator += input[i].
	body.Load(a, accB, 0)
	body.Add(a, a, v)
	body.Store(accB, 0, a)
	// The idempotent part: output[i] = input[i] * 7.
	o, oaddr := f.NewReg(), f.NewReg()
	body.MulI(o, v, 7)
	body.Add(oaddr, outB, i)
	body.Store(oaddr, 0, o)
	body.AddI(i, i, 1)
	body.Jmp(head)

	res := f.NewReg()
	exit.Load(res, accB, 0)
	exit.Ret(res)
	f.Recompute()
	return mod, acc
}

func main() {
	mod, acc := buildProgram()

	// 1. Golden run: what should the program produce?
	golden := interp.New(mod, interp.Config{})
	want, err := golden.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden result:            %d (in %d instructions)\n", want, golden.BaseCount)

	// 2. Compile with Encore: analyze regions, checkpoint the WAR store,
	//    attach recovery blocks.
	freshMod, _ := buildProgram()
	cfg := core.DefaultConfig()
	// The toy loop body is a dozen instructions, so its checkpoint cost is
	// a large fraction of its hot path; raise the overhead budget so the
	// selector still protects it (real kernels amortize much better —
	// compare examples/adpcm).
	cfg.Budget = 0.60
	res, err := core.Compile(freshMod, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Regions {
		fmt.Printf("region %d (%s): %-15s checkpoints=%d live-in reg ckpts=%d selected=%v\n",
			r.ID, r.Header.Name, r.Analysis.Class, len(r.Analysis.CP), len(r.RegCkpts), r.Selected)
	}
	fmt.Printf("measured overhead:        %.2f%%\n", res.MeasuredOverhead*100)

	// 3. Inject a transient fault mid-loop and let Encore recover.
	m := interp.New(res.Mod, interp.Config{})
	m.SetRuntime(res.Metas)
	m.InjectFault(interp.FaultPlan{
		Mode:          interp.CorruptOutput,
		InjectAt:      300, // strike inside the loop
		Bit:           13,
		DetectLatency: 5,
	})
	got, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	rep := m.FaultReport()
	fmt.Printf("fault injected at instr:  %d (register r%d, bit 13)\n", rep.Site.Count, rep.Site.Reg)
	fmt.Printf("detected and rolled back: %v (region %d, same instance: %v)\n",
		rep.RolledBack, rep.TargetRegion, rep.SameInstance)
	fmt.Printf("result with fault:        %d\n", got)
	if got == want {
		fmt.Println("=> Encore recovered: output identical to the golden run.")
	} else {
		fmt.Println("=> output diverged (fault escaped the region)")
	}
	_ = acc
}
