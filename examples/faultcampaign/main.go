// Fault-campaign example: the full Figure-8 style experiment on a subset
// of benchmarks — Monte-Carlo hardware masking plus end-to-end fault
// injection with Encore recovery — comparing the measured survival rate
// against the paper's analytical model.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"encore/internal/core"
	"encore/internal/ir"
	"encore/internal/sfi"
	"encore/internal/workload"
)

func main() {
	apps := []string{"164.gzip", "175.vpr", "172.mgrid", "g721encode", "mpeg2dec"}
	const trials = 250
	const dmax = 100

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tmasked\tmeasured survival\tmodel prediction")
	for _, name := range apps {
		sp, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}

		// Raw-strike masking study (uninstrumented binary).
		mask, err := sfi.MeasureMasking(func() (*ir.Module, []*ir.Global) {
			a := sp.Build()
			return a.Mod, a.Outputs
		}, sfi.MaskingConfig{Trials: trials, Seed: 99})
		if err != nil {
			log.Fatal(err)
		}

		// Instrumented campaign: inject unmasked-style output faults.
		art := sp.Build()
		res, err := core.Compile(art.Mod, core.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		camp, err := sfi.RunCampaign(res.Mod, res.Metas, art.Outputs, sfi.CampaignConfig{
			Trials: trials, Seed: 99, Dmax: dmax,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Analytical prediction: masked + α-scaled recoverable coverage.
		cov := res.RecoverableCoverage(dmax)
		predicted := mask.MaskedRate + (1-mask.MaskedRate)*(cov.RecovIdem+cov.RecovCkpt)
		measured := mask.MaskedRate + (1-mask.MaskedRate)*camp.RecoveredRate()

		fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\t%.1f%%\n",
			name, mask.MaskedRate*100, measured*100, predicted*100)
	}
	tw.Flush()
	fmt.Println("\nsurvival = masked + (1-masked) × P(fault recovered or benign)")
}
