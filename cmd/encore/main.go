// Command encore compiles a benchmark with the Encore pipeline and prints
// the per-region analysis, instrumentation, and overhead report.
//
// Usage:
//
//	encore [-app name] [-pmin p | -nopmin] [-gamma g] [-eta e]
//	       [-budget b] [-alias static|optimistic] [-engine fast|ref|closure]
//	       [-regions] [-hashes] [-ir] [-metrics file|-] [-prom file|-]
//	       [-chrometrace file|-]
//
// With no -app it reports a one-line summary for every benchmark.
// -metrics writes the observability snapshot of the compiles (per-stage
// spans, region-heuristic and interpreter counters; see DESIGN.md §9) as
// JSON to the given file, or to stdout for "-"; -prom writes the same
// snapshot in the Prometheus text exposition format. -chrometrace records
// the compile-stage span timeline and writes a chrome://tracing JSON
// array to the given file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"encore/internal/alias"
	"encore/internal/core"
	"encore/internal/idem"
	"encore/internal/interp"
	"encore/internal/ir"
	"encore/internal/obs"
	"encore/internal/workload"
)

func main() {
	var (
		app       = flag.String("app", "", "benchmark name (empty = summary of all)")
		pmin      = flag.Float64("pmin", 0.0, "Pmin pruning threshold")
		noPmin    = flag.Bool("nopmin", false, "disable profile pruning (Pmin = ∅)")
		gamma     = flag.Float64("gamma", 0, "γ Coverage/Cost floor (0 = budget-driven)")
		eta       = flag.Float64("eta", 0.5, "η merge threshold")
		budget    = flag.Float64("budget", 0.20, "overhead budget fraction")
		aliasMode = flag.String("alias", "static", "alias analysis: static, profiled, or optimistic")
		engine    = flag.String("engine", "", "execution engine for measurement runs: fast, ref, or closure")
		regions   = flag.Bool("regions", false, "print per-region detail")
		hashes    = flag.Bool("hashes", false, "print the per-region content-hash table (the adaptive-reuse key)")
		dumpIR    = flag.Bool("ir", false, "print the instrumented IR")
		optimize  = flag.Bool("O", false, "run scalar optimizations before analysis")
		file      = flag.String("file", "", "compile a textual IR module from a file instead of a benchmark")
		jsonOut   = flag.Bool("json", false, "emit the per-app report as JSON")
		traceN    = flag.Int64("trace", 0, "print the first N executed instructions of the instrumented binary")
		metrics   = flag.String("metrics", "", "write the observability snapshot as JSON to this file (- = stdout)")
		prom      = flag.String("prom", "", "write the observability snapshot in Prometheus text format to this file (- = stdout)")
		chrome    = flag.String("chrometrace", "", "write a chrome://tracing span timeline to this file (- = stdout)")
	)
	flag.Parse()
	if *chrome != "" {
		obs.Default().CaptureSpans(true)
	}

	cfg := core.Config{
		Pmin: *pmin, UsePmin: !*noPmin,
		Gamma: *gamma, Eta: *eta, Budget: *budget,
		Optimize: *optimize,
		Obs:      obs.Default(),
	}
	switch *aliasMode {
	case "static":
		cfg.AliasMode = alias.Static
	case "profiled":
		cfg.AliasMode = alias.Profiled
	case "optimistic":
		cfg.AliasMode = alias.Optimistic
	default:
		fmt.Fprintf(os.Stderr, "encore: unknown alias mode %q\n", *aliasMode)
		os.Exit(2)
	}
	eng, err := interp.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "encore:", err)
		os.Exit(2)
	}
	cfg.Interp.Engine = eng

	specs := workload.All()
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "encore:", err)
			os.Exit(2)
		}
		name := *file
		specs = []workload.Spec{{Name: name, Build: func() *workload.Artifact {
			mod, err := ir.Parse(string(src))
			if err != nil {
				fmt.Fprintln(os.Stderr, "encore:", err)
				os.Exit(1)
			}
			return &workload.Artifact{Mod: mod, Outputs: mod.Globals}
		}}}
	} else if *app != "" {
		sp, err := workload.ByName(*app)
		if err != nil {
			fmt.Fprintln(os.Stderr, "encore:", err)
			os.Exit(2)
		}
		specs = []workload.Spec{sp}
	}

	var jsonRows []appReport
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if !*jsonOut {
		fmt.Fprintln(tw, "app\tregions\tidem\tnonidem\tunknown\tselected\toverhead\tckpt B/region")
	}
	for _, sp := range specs {
		art := sp.Build()
		res, err := core.Compile(art.Mod, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "encore: %s: %v\n", sp.Name, err)
			os.Exit(1)
		}
		cc := res.ClassCounts()
		selected := 0
		for _, r := range res.Regions {
			if r.Selected {
				selected++
			}
		}
		var bpr float64
		if res.RegionEntries > 0 {
			bpr = float64(res.CkptMemBytes+res.CkptRegBytes) / float64(res.RegionEntries)
		}
		if *jsonOut {
			jsonRows = append(jsonRows, makeAppReport(sp.Name, res))
		} else {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d/%d\t%.2f%%\t%.1f\n",
				sp.Name, cc.Total(), cc.Idempotent, cc.NonIdempotent, cc.Unknown,
				selected, len(res.Regions), res.MeasuredOverhead*100, bpr)
			tw.Flush()
		}
		if *traceN > 0 {
			traceRun(res, *traceN)
		}

		if *regions {
			total := float64(res.Prof.Total)
			for _, r := range res.Regions {
				class := r.Analysis.Class.String()
				if r.Analysis.Class == idem.NonIdempotent && r.MultiCkpt {
					class += " (multi-ckpt)"
				}
				fmt.Printf("  region %-3d %-28s %-24s sel=%-5v cp=%-3d regs=%-2d dyn=%5.1f%% instance=%.0f\n",
					r.ID, r.Fn.Name+"/"+r.Header.Name, class, r.Selected,
					len(r.Analysis.CP), len(r.RegCkpts),
					100*float64(r.DynInstrs)/total, r.InstanceLen())
			}
		}
		if *hashes {
			// The same content hash keys ledger headers (sfi.RegionInfo.Hash)
			// and adaptive-reuse priors, so this table lets a user predict
			// which regions a -reuse re-run will re-inject after an edit.
			for _, rc := range res.RegionCoverages(100) {
				fmt.Printf("  region %-3d %-28s %s\n", rc.ID, rc.Fn+"/"+rc.Header, rc.Hash)
			}
		}
		if *dumpIR {
			fmt.Println(res.Mod.String())
		}
	}
	tw.Flush()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonRows); err != nil {
			fmt.Fprintln(os.Stderr, "encore:", err)
			os.Exit(1)
		}
	}
	if err := obs.WriteMetrics(*metrics, obs.Default()); err != nil {
		fmt.Fprintln(os.Stderr, "encore: metrics:", err)
		os.Exit(1)
	}
	if err := obs.WritePrometheusFile(*prom, obs.Default()); err != nil {
		fmt.Fprintln(os.Stderr, "encore: prom:", err)
		os.Exit(1)
	}
	if err := obs.WriteChromeTraceFile(*chrome, obs.Default()); err != nil {
		fmt.Fprintln(os.Stderr, "encore: chrometrace:", err)
		os.Exit(1)
	}
}

// appReport is the machine-readable form of one compilation report.
type appReport struct {
	App              string         `json:"app"`
	Regions          int            `json:"regions"`
	Idempotent       int            `json:"idempotent"`
	NonIdempotent    int            `json:"nonIdempotent"`
	Unknown          int            `json:"unknown"`
	Selected         int            `json:"selected"`
	MeasuredOverhead float64        `json:"measuredOverhead"`
	BytesPerRegion   float64        `json:"ckptBytesPerRegion"`
	RecoverableExec  float64        `json:"recoverableExecution"`
	CoverageD100     float64        `json:"alphaCoverageD100"`
	RegionDetail     []regionReport `json:"regionDetail"`
}

type regionReport struct {
	ID          int     `json:"id"`
	Fn          string  `json:"fn"`
	Header      string  `json:"header"`
	Class       string  `json:"class"`
	Selected    bool    `json:"selected"`
	Checkpoints int     `json:"checkpoints"`
	RegCkpts    int     `json:"regCheckpoints"`
	DynFraction float64 `json:"dynFraction"`
	InstanceLen float64 `json:"instanceLen"`
}

func makeAppReport(name string, res *core.Result) appReport {
	cc := res.ClassCounts()
	rep := appReport{
		App: name, Regions: cc.Total(),
		Idempotent: cc.Idempotent, NonIdempotent: cc.NonIdempotent, Unknown: cc.Unknown,
		MeasuredOverhead: res.MeasuredOverhead,
	}
	if res.RegionEntries > 0 {
		rep.BytesPerRegion = float64(res.CkptMemBytes+res.CkptRegBytes) / float64(res.RegionEntries)
	}
	rep.RecoverableExec = res.DynBreakdown().Recoverable()
	cov := res.RecoverableCoverage(100)
	rep.CoverageD100 = cov.RecovIdem + cov.RecovCkpt
	total := float64(res.Prof.Total)
	for _, r := range res.Regions {
		if r.Selected {
			rep.Selected++
		}
		dr := regionReport{
			ID: r.ID, Fn: r.Fn.Name, Header: r.Header.Name,
			Class: r.Analysis.Class.String(), Selected: r.Selected,
			Checkpoints: len(r.Analysis.CP), RegCkpts: len(r.RegCkpts),
			InstanceLen: r.InstanceLen(),
		}
		if total > 0 {
			dr.DynFraction = float64(r.DynInstrs) / total
		}
		rep.RegionDetail = append(rep.RegionDetail, dr)
	}
	return rep
}

// traceHook prints the first N executed instructions as disassembly.
type traceHook struct {
	n int64
}

func (h *traceHook) OnInstr(m *interp.Machine, b *ir.Block, idx int) {
	if m.Count >= h.n {
		return
	}
	if idx < len(b.Instrs) {
		fmt.Printf("%6d  %s/%s  %s\n", m.Count, b.Fn.Name, b.Name, b.Instrs[idx].String())
	} else {
		fmt.Printf("%6d  %s/%s  %s\n", m.Count, b.Fn.Name, b.Name, b.Term.String())
	}
}

func traceRun(res *core.Result, n int64) {
	m := interp.New(res.Mod, interp.Config{Hook: &traceHook{n: n}, MaxInstrs: n + 1})
	m.SetRuntime(res.Metas)
	_, _ = m.Run() // budget exhaustion is the expected stop
}
