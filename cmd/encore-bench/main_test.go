package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMetricsJSON runs the real table1 experiment through runBench with
// "-metrics -" and checks the snapshot appended to stdout is valid JSON
// with the documented top-level sections and the expected span/counter
// families.
func TestMetricsJSON(t *testing.T) {
	var out bytes.Buffer
	err := runBench([]string{"-exp", "table1", "-table1-app", "rawcaudio", "-quick", "-metrics", "-"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot is the indented JSON object trailing the rendered
	// experiment table; it always opens with the counters section.
	text := out.String()
	idx := strings.LastIndex(text, "{\n  \"counters\"")
	if idx < 0 {
		t.Fatalf("no metrics JSON in output:\n%s", text)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal([]byte(text[idx:]), &snap); err != nil {
		t.Fatalf("metrics output is not valid JSON: %v", err)
	}
	for _, key := range []string{"counters", "histograms", "spans"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("metrics JSON missing top-level key %q", key)
		}
	}

	type named struct {
		Name string `json:"name"`
	}
	nameSet := func(key string) map[string]bool {
		var rows []named
		if err := json.Unmarshal(snap[key], &rows); err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		set := map[string]bool{}
		for _, r := range rows {
			set[r.Name] = true
		}
		return set
	}
	spans := nameSet("spans")
	// The harness compiles through the staged pipeline: analysis and
	// finalization report as separate span roots (a monolithic "compile"
	// span appears only for direct core.Compile calls).
	for _, want := range []string{"bench/table1", "compile/analyze", "compile/analyze/profile", "compile/finalize", "compile/finalize/select"} {
		if !spans[want] {
			t.Errorf("missing span %q (have %v)", want, spans)
		}
	}
	counters := nameSet("counters")
	for _, want := range []string{"compile.analyze.runs", "compile.finalize.runs", "compile.region.candidates", "interp.instrs.total"} {
		if !counters[want] {
			t.Errorf("missing counter %q", want)
		}
	}
}

func TestUnknownEngineRejected(t *testing.T) {
	var out bytes.Buffer
	err := runBench([]string{"-exp", "table1", "-engine", "jit"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("want an unknown-engine error, got %v", err)
	}
}

// TestEngineFlagRuns drives one real experiment under the closure engine:
// the harness must thread -engine through its compile and measurement
// caches and still render the exhibit.
func TestEngineFlagRuns(t *testing.T) {
	var out bytes.Buffer
	err := runBench([]string{"-exp", "table1", "-table1-app", "rawcaudio", "-quick", "-engine", "closure"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Encore") {
		t.Fatalf("no Table 1 rows in output:\n%s", out.String())
	}
}

// TestJSONReportEmbedsMetrics checks the -json report carries the
// observability snapshot under "metrics" (the standalone -metrics flag is
// covered above).
func TestJSONReportEmbedsMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rep.json")
	var out bytes.Buffer
	err := runBench([]string{"-exp", "table1", "-table1-app", "rawcaudio", "-quick", "-json", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		AnalyzeNS  int64 `json:"analyze_ns"`
		FinalizeNS int64 `json:"finalize_ns"`

		Experiments []struct {
			Name string `json:"name"`
		} `json:"experiments"`
		Metrics *struct {
			Counters []struct {
				Name  string `json:"name"`
				Value int64  `json:"value"`
			} `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Name != "table1" {
		t.Fatalf("unexpected experiments: %+v", rep.Experiments)
	}
	if rep.Metrics == nil || len(rep.Metrics.Counters) == 0 {
		t.Fatal("report has no embedded metrics snapshot")
	}
	found := false
	for _, c := range rep.Metrics.Counters {
		if c.Name == "compile.analyze.runs" && c.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Error("embedded snapshot lacks a positive compile.analyze.runs counter")
	}
	if rep.AnalyzeNS <= 0 || rep.FinalizeNS <= 0 {
		t.Errorf("staged timing fields not populated: analyze_ns=%d finalize_ns=%d", rep.AnalyzeNS, rep.FinalizeNS)
	}
}
