// Command encore-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	encore-bench [-exp fig1|table1|fig5|fig6|fig7a|fig7b|fig8|all]
//	             [-apps a,b,c] [-quick] [-table1-app name] [-json file]
//
// Each experiment prints the same rows/series as the corresponding paper
// exhibit; see EXPERIMENTS.md for the paper-vs-measured comparison.
// With -json, a machine-readable report — per-experiment wall-clock plus
// the full result dataset — is additionally written to the given file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"encore/internal/experiments"
)

// renderable is what every experiment result implements.
type renderable interface{ Render(w io.Writer) }

// expReport is one experiment's entry in the -json report.
type expReport struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
	Result any     `json:"result"`
}

// report is the top-level -json document.
type report struct {
	Quick       bool        `json:"quick"`
	Apps        []string    `json:"apps,omitempty"`
	TotalWallMS float64     `json:"total_wall_ms"`
	Experiments []expReport `json:"experiments"`
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig1, table1, fig5, fig6, fig7a, fig7b, fig8, abl-eta, abl-budget, abl-signature, abl-detector, abl-input, all")
		apps     = flag.String("apps", "", "comma-separated benchmark subset")
		quick    = flag.Bool("quick", false, "reduced Monte-Carlo trials")
		t1app    = flag.String("table1-app", "175.vpr", "workload for the Table 1 comparison")
		jsonPath = flag.String("json", "", "write a JSON report (wall-clock + results) to this file")
	)
	flag.Parse()

	h := &experiments.Harness{Quick: *quick}
	if *apps != "" {
		h.Apps = strings.Split(*apps, ",")
	}

	run := func(name string) (renderable, error) {
		switch name {
		case "fig1":
			return h.Fig1()
		case "table1":
			return h.Table1(*t1app)
		case "fig5":
			return h.Fig5()
		case "fig6":
			return h.Fig6()
		case "fig7a":
			return h.Fig7a()
		case "fig7b":
			return h.Fig7b()
		case "fig8":
			return h.Fig8()
		case "abl-eta":
			return h.AblationEta(nil)
		case "abl-budget":
			return h.AblationBudget(nil)
		case "abl-signature":
			return h.AblationSignature()
		case "abl-input":
			return h.AblationInputShift(7)
		case "abl-detector":
			return h.AblationDetector(100)
		}
		return nil, fmt.Errorf("unknown experiment %q", name)
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"fig1", "table1", "fig5", "fig6", "fig7a", "fig7b", "fig8",
			"abl-eta", "abl-budget", "abl-signature", "abl-detector", "abl-input"}
	}
	rep := report{Quick: *quick, Apps: h.Apps}
	total := time.Now()
	for _, n := range names {
		start := time.Now()
		r, err := run(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "encore-bench:", err)
			os.Exit(1)
		}
		wall := time.Since(start)
		r.Render(os.Stdout)
		fmt.Printf("[%s: %.0f ms]\n\n", n, float64(wall.Microseconds())/1000)
		rep.Experiments = append(rep.Experiments, expReport{
			Name: n, WallMS: float64(wall.Microseconds()) / 1000, Result: r,
		})
	}
	rep.TotalWallMS = float64(time.Since(total).Microseconds()) / 1000

	if *jsonPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "encore-bench: json:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "encore-bench: json:", err)
			os.Exit(1)
		}
	}
}
