// Command encore-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	encore-bench [-exp fig1|table1|fig5|fig6|fig7a|fig7b|fig8|all]
//	             [-apps a,b,c] [-quick] [-engine fast|ref|closure]
//	             [-table1-app name] [-json file]
//	             [-metrics file|-] [-prom file|-] [-chrometrace file|-]
//	             [-cpuprofile file] [-memprofile file]
//
// Each experiment prints the same rows/series as the corresponding paper
// exhibit; see EXPERIMENTS.md for the paper-vs-measured comparison.
// With -json, a machine-readable report — per-experiment wall-clock plus
// the full result dataset — is additionally written to the given file.
// With -metrics, the process-wide observability snapshot (per-stage
// compile spans, heuristic counters, interpreter and SFI totals; see
// DESIGN.md §9) is written as JSON to the given file, or to stdout for
// "-"; -prom writes the same snapshot in the Prometheus text exposition
// format. The -json report embeds the same snapshot under "metrics".
// -chrometrace records per-experiment span timings and writes a
// chrome://tracing JSON array to the given file. -cpuprofile and
// -memprofile write pprof profiles of the run.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"encore/internal/experiments"
	"encore/internal/interp"
	"encore/internal/obs"
)

// renderable is what every experiment result implements.
type renderable interface{ Render(w io.Writer) }

// expReport is one experiment's entry in the -json report.
type expReport struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
	Result any     `json:"result"`
}

// report is the top-level -json document.
type report struct {
	Quick       bool        `json:"quick"`
	Apps        []string    `json:"apps,omitempty"`
	TotalWallMS float64     `json:"total_wall_ms"`
	Experiments []expReport `json:"experiments"`

	// Staged-pipeline wall-clock totals, summed across every compile of
	// the run (from the "compile", "compile/analyze", and
	// "compile/finalize" span aggregates). CompileNS covers only full
	// core.Compile calls; sweeps that replay a memoized analysis appear
	// under FinalizeNS without a matching AnalyzeNS share, which is the
	// reuse these fields exist to make visible.
	CompileNS  int64 `json:"compile_ns"`
	AnalyzeNS  int64 `json:"analyze_ns"`
	FinalizeNS int64 `json:"finalize_ns"`

	// Metrics embeds the end-of-run observability snapshot, so a single
	// -json artifact carries results and the counters/spans behind them.
	// The standalone -metrics flag still works independently.
	Metrics *obs.Snapshot `json:"metrics"`
}

func main() {
	if err := runBench(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "encore-bench:", err)
		os.Exit(1)
	}
}

// runBench is the whole command behind a testable seam: flags come from
// argv, experiment tables and "-metrics -" output go to stdout.
func runBench(argv []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("encore-bench", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment: fig1, table1, fig5, fig6, fig7a, fig7b, fig8, abl-eta, abl-budget, abl-signature, abl-detector, abl-input, engines, served, sharded, all")
		apps       = fs.String("apps", "", "comma-separated benchmark subset")
		quick      = fs.Bool("quick", false, "reduced Monte-Carlo trials")
		engine     = fs.String("engine", "", "execution engine for measurement runs: fast, ref, or closure (results are engine-invariant)")
		t1app      = fs.String("table1-app", "175.vpr", "workload for the Table 1 comparison")
		jsonPath   = fs.String("json", "", "write a JSON report (wall-clock + results) to this file")
		metrics    = fs.String("metrics", "", "write the observability snapshot as JSON to this file (- = stdout)")
		prom       = fs.String("prom", "", "write the observability snapshot in Prometheus text format to this file (- = stdout)")
		chrome     = fs.String("chrometrace", "", "write a chrome://tracing span timeline to this file (- = stdout)")
		cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a pprof heap profile to this file")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	eng, err := interp.ParseEngine(*engine)
	if err != nil {
		return err
	}
	h := &experiments.Harness{Quick: *quick, Engine: eng}
	if *apps != "" {
		h.Apps = strings.Split(*apps, ",")
	}

	run := func(name string) (renderable, error) {
		switch name {
		case "fig1":
			return h.Fig1()
		case "table1":
			return h.Table1(*t1app)
		case "fig5":
			return h.Fig5()
		case "fig6":
			return h.Fig6()
		case "fig7a":
			return h.Fig7a()
		case "fig7b":
			return h.Fig7b()
		case "fig8":
			return h.Fig8()
		case "abl-eta":
			return h.AblationEta(nil)
		case "abl-budget":
			return h.AblationBudget(nil)
		case "abl-signature":
			return h.AblationSignature()
		case "abl-input":
			return h.AblationInputShift(7)
		case "abl-detector":
			return h.AblationDetector(100)
		case "engines":
			return h.Engines("")
		case "served":
			return h.Served("")
		case "sharded":
			return h.Sharded("")
		}
		return nil, fmt.Errorf("unknown experiment %q", name)
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"fig1", "table1", "fig5", "fig6", "fig7a", "fig7b", "fig8",
			"abl-eta", "abl-budget", "abl-signature", "abl-detector", "abl-input",
			"engines", "served", "sharded"}
	}
	reg := obs.Default()
	if *chrome != "" {
		reg.CaptureSpans(true)
	}
	rep := report{Quick: *quick, Apps: h.Apps}
	total := time.Now()
	for _, n := range names {
		sp := reg.Span("bench/" + n)
		start := time.Now()
		r, err := run(n)
		wall := time.Since(start)
		sp.End()
		if err != nil {
			return err
		}
		r.Render(stdout)
		fmt.Fprintf(stdout, "[%s: %.0f ms]\n\n", n, float64(wall.Microseconds())/1000)
		rep.Experiments = append(rep.Experiments, expReport{
			Name: n, WallMS: float64(wall.Microseconds()) / 1000, Result: r,
		})
	}
	rep.TotalWallMS = float64(time.Since(total).Microseconds()) / 1000
	rep.Metrics = reg.Snapshot()
	for _, sp := range rep.Metrics.Spans {
		ns := int64(sp.TotalMS * 1e6)
		switch sp.Name {
		case "compile":
			rep.CompileNS = ns
		case "compile/analyze":
			rep.AnalyzeNS = ns
		case "compile/finalize":
			rep.FinalizeNS = ns
		}
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return fmt.Errorf("json: %w", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			return fmt.Errorf("json: %w", err)
		}
	}
	if err := obs.WriteMetricsTo(*metrics, reg, stdout); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if err := obs.WritePrometheusFileTo(*prom, reg, stdout); err != nil {
		return fmt.Errorf("prom: %w", err)
	}
	if err := obs.WriteChromeTraceFileTo(*chrome, reg, stdout); err != nil {
		return fmt.Errorf("chrometrace: %w", err)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}
