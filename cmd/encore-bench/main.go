// Command encore-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	encore-bench [-exp fig1|table1|fig5|fig6|fig7a|fig7b|fig8|all]
//	             [-apps a,b,c] [-quick] [-table1-app name]
//
// Each experiment prints the same rows/series as the corresponding paper
// exhibit; see EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"encore/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: fig1, table1, fig5, fig6, fig7a, fig7b, fig8, abl-eta, abl-budget, abl-signature, abl-detector, abl-input, all")
		apps  = flag.String("apps", "", "comma-separated benchmark subset")
		quick = flag.Bool("quick", false, "reduced Monte-Carlo trials")
		t1app = flag.String("table1-app", "175.vpr", "workload for the Table 1 comparison")
	)
	flag.Parse()

	h := &experiments.Harness{Quick: *quick}
	if *apps != "" {
		h.Apps = strings.Split(*apps, ",")
	}

	run := func(name string) error {
		switch name {
		case "fig1":
			r, err := h.Fig1()
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
		case "table1":
			r, err := h.Table1(*t1app)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
		case "fig5":
			r, err := h.Fig5()
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
		case "fig6":
			r, err := h.Fig6()
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
		case "fig7a":
			r, err := h.Fig7a()
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
		case "fig7b":
			r, err := h.Fig7b()
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
		case "fig8":
			r, err := h.Fig8()
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
		case "abl-eta":
			r, err := h.AblationEta(nil)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
		case "abl-budget":
			r, err := h.AblationBudget(nil)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
		case "abl-signature":
			r, err := h.AblationSignature()
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
		case "abl-input":
			r, err := h.AblationInputShift(7)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
		case "abl-detector":
			r, err := h.AblationDetector(100)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Println()
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"fig1", "table1", "fig5", "fig6", "fig7a", "fig7b", "fig8",
			"abl-eta", "abl-budget", "abl-signature", "abl-detector", "abl-input"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintln(os.Stderr, "encore-bench:", err)
			os.Exit(1)
		}
	}
}
