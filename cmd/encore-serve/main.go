// Command encore-serve runs the multi-tenant campaign daemon: an
// HTTP/JSON service (internal/serve) that accepts concurrent
// fault-injection campaign submissions, streams each campaign's
// per-trial JSONL ledger incrementally, and enforces per-tenant
// admission budgets with 429 backpressure. Served ledgers are
// byte-identical to batch `encore-sfi -trace` output for the same
// (workload, config, seed).
//
// Usage:
//
//	encore-serve [-addr host:port] [-max-inflight n] [-tenant-inflight n]
//	             [-retry-after sec] [-workers n] [-engine fast|ref|closure]
//	             [-checkpoints k] [-drain-timeout dur] [-stats-every n]
//	             [-adaptive-ci w] [-log-requests] [-pprof]
//
// The daemon prints "listening on http://ADDR" once the socket is bound
// (use -addr 127.0.0.1:0 for an ephemeral port) and serves the API
// documented in docs/API.md. Structured one-line JSON events (campaign
// accepted/settled, plus per-request logs with -log-requests) go to
// stderr; -pprof mounts net/http/pprof under /debug/pprof/. On
// SIGINT/SIGTERM it stops admitting campaigns (new submits answer 503),
// waits up to -drain-timeout for in-flight campaigns to finish, then
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"encore/internal/interp"
	"encore/internal/serve"
)

func main() {
	if err := runServe(os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "encore-serve:", err)
		os.Exit(1)
	}
}

// runServe is the whole command behind a testable seam: flags come from
// argv, logs go to logw, and a non-nil ready channel receives the bound
// address once the daemon is listening.
func runServe(argv []string, logw io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("encore-serve", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		maxInflight  = fs.Int("max-inflight", 8192, "global in-flight trial budget across all campaigns")
		tenantMax    = fs.Int("tenant-inflight", 0, "per-tenant in-flight trial budget (0 = the global budget)")
		retryAfter   = fs.Int("retry-after", 1, "Retry-After hint in seconds for 429/503 responses")
		workers      = fs.Int("workers", 0, "default trial parallelism per campaign (0 = GOMAXPROCS)")
		engine       = fs.String("engine", "", "default execution engine: fast, ref, or closure")
		checkpoints  = fs.Int("checkpoints", 16, "default golden-run snapshot rungs for fork-from-checkpoint trials (0 = replay the full prefix)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight campaigns")
		statsEvery   = fs.Int("stats-every", 0, "default stats-stream cadence in settled trials (0 = built-in default)")
		adaptiveCI   = fs.Float64("adaptive-ci", 0, "default Wilson half-width target for adaptive campaigns (0 = sfi default; never enables adaptive by itself)")
		logRequests  = fs.Bool("log-requests", false, "log one JSON line per HTTP request")
		pprofFlag    = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	eng, err := interp.ParseEngine(*engine)
	if err != nil {
		return err
	}
	if *adaptiveCI < 0 {
		return fmt.Errorf("-adaptive-ci %g is negative: the target is a Wilson half-width", *adaptiveCI)
	}
	if *checkpoints < 0 {
		return fmt.Errorf("-checkpoints %d is negative (0 disables the snapshot ladder)", *checkpoints)
	}

	srv := serve.NewServer(serve.Config{
		MaxInFlightTrials:       *maxInflight,
		TenantMaxInFlightTrials: *tenantMax,
		RetryAfter:              time.Duration(*retryAfter) * time.Second,
		Workers:                 *workers,
		Engine:                  eng,
		Checkpoints:             *checkpoints,
		StatsEvery:              *statsEvery,
		AdaptiveCI:              *adaptiveCI,
		Log:                     logw,
		LogRequests:             *logRequests,
		Pprof:                   *pprofFlag,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "encore-serve: listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: srv}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		return err
	case s := <-sig:
		fmt.Fprintf(logw, "encore-serve: %v: draining (timeout %s)\n", s, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(logw, "encore-serve: drain: %v; shutting down anyway\n", err)
	}
	return hs.Shutdown(ctx)
}
