// Command encore-sfi runs end-to-end statistical fault injection against
// Encore-instrumented benchmarks: each trial corrupts one instruction
// output, a symptom detector fires after a random latency, and the
// instrumented program's own recovery blocks roll execution back. Outcomes
// are classified against a golden run.
//
// Usage:
//
//	encore-sfi [-app name] [-trials n] [-dmax d] [-seed s] [-masking]
//	           [-workers n] [-progress] [-metrics file|-]
//
// -progress emits a rate-limited trial counter to stderr while a campaign
// runs. -metrics writes the observability snapshot (compile spans, SFI
// outcome counters, worker throughput; see DESIGN.md §9) as JSON to the
// given file, or to stdout for "-".
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"encore/internal/core"
	"encore/internal/ir"
	"encore/internal/obs"
	"encore/internal/sfi"
	"encore/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "", "benchmark (empty = all)")
		trials   = flag.Int("trials", 300, "injections per benchmark")
		dmax     = flag.Int64("dmax", 100, "maximum detection latency (instructions)")
		seed     = flag.Uint64("seed", 1, "PRNG seed")
		masking  = flag.Bool("masking", false, "also run the raw-strike masking study")
		workers  = flag.Int("workers", 0, "trial parallelism (0 = GOMAXPROCS; clamped to the trial count)")
		progress = flag.Bool("progress", false, "report per-campaign trial progress on stderr")
		metrics  = flag.String("metrics", "", "write the observability snapshot as JSON to this file (- = stdout)")
	)
	flag.Parse()

	specs := workload.All()
	if *app != "" {
		sp, err := workload.ByName(*app)
		if err != nil {
			fmt.Fprintln(os.Stderr, "encore-sfi:", err)
			os.Exit(2)
		}
		specs = []workload.Spec{sp}
	}

	reg := obs.Default()
	// newProgress returns nil unless -progress is set; a nil *Progress
	// no-ops, so the campaign code takes it unconditionally.
	newProgress := func(label string, total int) *obs.Progress {
		if !*progress {
			return nil
		}
		return obs.NewProgress(os.Stderr, label, total, obs.DefaultProgressInterval)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\trecovered\tbenign\tunrec\trec-wrong\tsdc\tcrash\tsame-inst\tmasked")
	for _, sp := range specs {
		sp := sp
		art := sp.Build()
		res, err := core.Compile(art.Mod, core.DefaultConfig())
		if err != nil {
			fmt.Fprintf(os.Stderr, "encore-sfi: %s: %v\n", sp.Name, err)
			os.Exit(1)
		}
		prog := newProgress(sp.Name+" campaign", *trials)
		camp, err := sfi.RunCampaign(res.Mod, res.Metas, art.Outputs, sfi.CampaignConfig{
			Trials: *trials, Seed: *seed, Dmax: *dmax, Workers: *workers,
			Obs: reg, Progress: prog,
		})
		prog.Finish()
		if err != nil {
			fmt.Fprintf(os.Stderr, "encore-sfi: %s: %v\n", sp.Name, err)
			os.Exit(1)
		}
		maskStr := "-"
		if *masking {
			mprog := newProgress(sp.Name+" masking", *trials)
			mres, err := sfi.MeasureMasking(func() (*ir.Module, []*ir.Global) {
				a := sp.Build()
				return a.Mod, a.Outputs
			}, sfi.MaskingConfig{
				Trials: *trials, Seed: *seed, Workers: *workers,
				Obs: reg, Progress: mprog,
			})
			mprog.Finish()
			if err != nil {
				fmt.Fprintf(os.Stderr, "encore-sfi: %s: %v\n", sp.Name, err)
				os.Exit(1)
			}
			maskStr = fmt.Sprintf("%.1f%%", mres.MaskedRate*100)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n", sp.Name,
			camp.Counts[sfi.Recovered], camp.Counts[sfi.Benign],
			camp.Counts[sfi.DetectedUnrecoverable], camp.Counts[sfi.RecoveredWrong],
			camp.Counts[sfi.SilentCorruption], camp.Counts[sfi.Crashed],
			camp.SameInstance, maskStr)
	}
	tw.Flush()
	if err := obs.WriteMetrics(*metrics, reg); err != nil {
		fmt.Fprintln(os.Stderr, "encore-sfi: metrics:", err)
		os.Exit(1)
	}
}
