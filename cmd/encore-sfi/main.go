// Command encore-sfi runs end-to-end statistical fault injection against
// Encore-instrumented benchmarks: each trial corrupts one instruction
// output, a symptom detector fires after a random latency, and the
// instrumented program's own recovery blocks roll execution back. Outcomes
// are classified against a golden run.
//
// Usage:
//
//	encore-sfi [-app name] [-trials n] [-dmax d] [-seed s] [-masking]
//	           [-workers n] [-engine fast|ref|closure] [-checkpoints k]
//	           [-progress]
//	           [-shard i/K] [-adaptive] [-adaptive-ci w] [-adaptive-round n]
//	           [-reuse trace.jsonl]
//	           [-metrics file|-] [-prom file|-] [-stats file|-]
//	           [-trace file|-] [-chrometrace file|-]
//	encore-sfi -report file|- [-json]
//	encore-sfi -merge [-trace file|-] [-stats file|-] shard1.jsonl shard2.jsonl …
//
// -checkpoints k captures k evenly spaced machine snapshots during the
// golden run (interp.RunWithSnapshots); each trial then restores the
// deepest snapshot strictly before its injection point and replays only
// the short delta, instead of re-executing the whole golden prefix from
// instruction zero. Outcomes, ledgers, and stats are byte-identical at
// any k (0 disables forking); the knob only moves trial throughput.
//
// -progress emits a rate-limited trial counter to stderr while a campaign
// runs; each line carries the worst-region confidence interval — the
// widest Wilson-score half-width on any selected region's recovery rate
// — so convergence is visible live. -metrics writes the observability
// snapshot (compile spans, SFI outcome counters, worker throughput; see
// DESIGN.md §9) as JSON to the given file, or to stdout for "-"; -prom
// writes the same snapshot in Prometheus text exposition format.
//
// -stats writes the final online-estimator snapshot per campaign (one
// JSON array element per app; see internal/stats and DESIGN.md §14):
// per-region recovery rates with Wilson confidence intervals, streaming
// latency/rollback moments, and the measured-vs-predicted coverage join.
// The output is byte-identical across -workers and -engine choices.
//
// -trace streams the per-trial ledger (see DESIGN.md §10) as JSONL to the
// given file: one campaign header line per app followed by one line per
// trial, byte-identical across runs with the same -seed. With "-" the
// ledger goes to stdout and the human outcome table moves to stderr so
// the stream stays machine-clean.
//
// -shard i/K executes only shard i of a K-way deterministic partition of
// the trial space (sfi.Partition): plans are still derived for the whole
// campaign, so the shard's ledger lines are byte-identical to the
// corresponding lines of a single-process run, and K shard ledgers merge
// back (-merge) into exactly the single-process ledger.
//
// -adaptive enables variance-aware early stopping (sfi.Stopper): trials
// aimed at regions whose recovery-rate Wilson interval has converged
// below the target half-width (-adaptive-ci, default 0.05) are skipped
// at deterministic round boundaries (-adaptive-round, 0 = heuristic).
// -reuse seeds the stopper with a prior campaign's per-region tallies
// keyed by region content hash, so a re-run over an edited module
// re-injects only regions whose code changed.
//
// -report switches to attribution mode: instead of injecting, it ingests
// a trace file ("-" = stdin) and prints per-region measured-vs-predicted
// coverage tables (or a JSON report with -json).
//
// -merge switches to merge mode: the positional arguments name per-shard
// JSONL ledgers (from -shard runs of the same campaign), merged in trial
// order to the -trace destination (default stdout) byte-identically to
// the single-process ledger; -stats additionally replays the merged
// records through the online estimator and writes the snapshot, again
// byte-identical to a single-process -stats run.
//
// -chrometrace records span timings and writes a chrome://tracing JSON
// array to the given file on exit.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"encore/internal/attrib"
	"encore/internal/core"
	"encore/internal/interp"
	"encore/internal/ir"
	"encore/internal/obs"
	"encore/internal/serve"
	"encore/internal/sfi"
	"encore/internal/stats"
	"encore/internal/workload"
)

func main() {
	if err := runSFI(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "encore-sfi:", err)
		os.Exit(1)
	}
}

// runSFI is the whole command behind a testable seam: flags come from
// argv; tables, traces, and reports go to stdout, diagnostics and the
// progress meter to stderr.
func runSFI(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("encore-sfi", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		app         = fs.String("app", "", "benchmark (empty = all)")
		trials      = fs.Int("trials", 300, "injections per benchmark")
		dmax        = fs.Int64("dmax", 100, "maximum detection latency (instructions)")
		seed        = fs.Uint64("seed", 1, "PRNG seed")
		masking     = fs.Bool("masking", false, "also run the raw-strike masking study")
		workers     = fs.Int("workers", 0, "trial parallelism (0 = GOMAXPROCS; clamped to the trial count)")
		checkpoints = fs.Int("checkpoints", 16, "golden-run snapshot rungs for fork-from-checkpoint trials (0 = replay the full prefix)")
		engine      = fs.String("engine", "", "trial execution engine: fast, ref, or closure (outcomes are engine-invariant)")
		progress    = fs.Bool("progress", false, "report per-campaign trial progress on stderr")
		metrics     = fs.String("metrics", "", "write the observability snapshot as JSON to this file (- = stdout)")
		prom        = fs.String("prom", "", "write the observability snapshot in Prometheus text format to this file (- = stdout)")
		statsPath   = fs.String("stats", "", "write per-campaign online estimator snapshots as JSON to this file (- = stdout)")
		tracePath   = fs.String("trace", "", "stream the per-trial JSONL ledger to this file (- = stdout)")
		reportPath  = fs.String("report", "", "attribution mode: read a trace from this file (- = stdin) and report")
		jsonOut     = fs.Bool("json", false, "with -report, emit the attribution report as JSON")
		shardSpec   = fs.String("shard", "", "run only shard i/K of the deterministic trial partition (e.g. 2/3)")
		mergeMode   = fs.Bool("merge", false, "merge mode: merge per-shard ledgers (positional args) to -trace, optional -stats replay")
		adaptive    = fs.Bool("adaptive", false, "enable variance-aware adaptive stopping (skip trials on converged regions)")
		adaptiveCI  = fs.Float64("adaptive-ci", 0, "adaptive stopping Wilson half-width target (0 = default; implies -adaptive)")
		adaptiveRnd = fs.Int("adaptive-round", 0, "adaptive stopping round size in trials (0 = heuristic; implies -adaptive)")
		reusePath   = fs.String("reuse", "", "with -adaptive, seed stopping tallies from this prior trace ledger (content-hash keyed)")
		chrometrace = fs.String("chrometrace", "", "write a chrome://tracing span timeline to this file (- = stdout)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *dmax < 0 {
		return fmt.Errorf("-dmax %d is negative: detection latency is sampled uniformly from [0, dmax]", *dmax)
	}
	if *checkpoints < 0 {
		return fmt.Errorf("-checkpoints %d is negative (0 disables the snapshot ladder)", *checkpoints)
	}
	eng, err := interp.ParseEngine(*engine)
	if err != nil {
		return err
	}

	if *reportPath != "" {
		if *mergeMode {
			return fmt.Errorf("-merge and -report are mutually exclusive modes")
		}
		return runReport(*reportPath, *jsonOut, stdout)
	}
	if *mergeMode {
		return runMerge(fs.Args(), *tracePath, *statsPath, stdout)
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (positional ledger files are only read in -merge mode)", fs.Args())
	}

	shardIdx, shardCnt, err := sfi.ParseShard(*shardSpec)
	if err != nil {
		return err
	}
	if *adaptiveCI < 0 {
		return fmt.Errorf("-adaptive-ci %g is negative: the target is a Wilson half-width", *adaptiveCI)
	}
	if *adaptiveRnd < 0 {
		return fmt.Errorf("-adaptive-round %d is negative", *adaptiveRnd)
	}
	var stop *sfi.Stopper
	if *adaptive || *adaptiveCI > 0 || *adaptiveRnd > 0 {
		stop = &sfi.Stopper{TargetCI: *adaptiveCI, Round: *adaptiveRnd}
	}
	if shardCnt > 0 && stop != nil {
		return fmt.Errorf("-shard and -adaptive cannot be combined: adaptive stopping decides from the global record stream")
	}
	if *reusePath != "" && stop == nil {
		return fmt.Errorf("-reuse requires -adaptive: prior tallies only seed the adaptive stopper")
	}
	// Prior campaign tallies for compositional reuse, keyed by app so one
	// multi-campaign ledger can seed a multi-app run.
	priors := map[string][]sfi.PriorRegion{}
	if *reusePath != "" {
		f, err := os.Open(*reusePath)
		if err != nil {
			return fmt.Errorf("reuse: %w", err)
		}
		campaigns, err := attrib.ReadTrace(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("reuse: %w", err)
		}
		for _, c := range campaigns {
			priors[c.Meta.App] = attrib.PriorRegions(c)
		}
	}

	reg := obs.Default()
	if *chrometrace != "" {
		reg.CaptureSpans(true)
	}
	// newProgress returns nil unless -progress is set; a nil *Progress
	// no-ops, so the campaign code takes it unconditionally.
	newProgress := func(label string, total int) *obs.Progress {
		if !*progress {
			return nil
		}
		return obs.NewProgress(stderr, label, total, obs.DefaultProgressInterval)
	}

	specs := workload.All()
	if *app != "" {
		sp, err := workload.ByName(*app)
		if err != nil {
			return err
		}
		specs = []workload.Spec{sp}
	}

	// The human-readable outcome table normally goes to stdout; when the
	// JSONL ledger claims stdout (-trace -) or the stats snapshots do
	// (-stats -), the table moves to stderr so the machine stream stays
	// clean and byte-deterministic. Both claiming stdout at once would
	// interleave two formats, so that combination is rejected.
	if *tracePath == "-" && *statsPath == "-" {
		return fmt.Errorf("-trace - and -stats - both claim stdout; write at least one to a file")
	}
	var sink *obs.EventSink
	tableOut := stdout
	if *statsPath == "-" {
		tableOut = stderr
	}
	if *tracePath != "" {
		if *tracePath == "-" {
			sink = obs.NewJSONLSink(stdout)
			tableOut = stderr
		} else {
			f, err := os.Create(*tracePath)
			if err != nil {
				return fmt.Errorf("trace: %w", err)
			}
			defer f.Close()
			sink = obs.NewJSONLSink(f)
		}
	}

	// The shard geometry depends only on (seed, trials, K), which are
	// campaign-global, so one Partition call covers every app.
	var shard *sfi.ShardRange
	if shardCnt > 0 {
		shards, err := sfi.Partition(*seed, *trials, shardCnt)
		if err != nil {
			return err
		}
		shard = &shards[shardIdx-1]
	}

	tw := tabwriter.NewWriter(tableOut, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\trecovered\tbenign\tunrec\trec-wrong\tsdc\tcrash\tsame-inst\tmasked")
	var snaps []*stats.Snapshot
	var adaptiveNotes []string
	ccfg := core.DefaultConfig()
	ccfg.Interp.Engine = eng
	for _, sp := range specs {
		sp := sp
		art := sp.Build()
		res, err := core.Compile(art.Mod, ccfg)
		if err != nil {
			return fmt.Errorf("%s: %w", sp.Name, err)
		}
		progTotal := *trials
		if shard != nil {
			progTotal = shard.Hi - shard.Lo
		}
		prog := newProgress(sp.Name+" campaign", progTotal)
		// The online estimator powers both the -stats snapshot and the
		// progress line's convergence note; it is only attached when one
		// of them wants it, so plain runs skip the per-trial bookkeeping.
		var est *stats.Estimator
		if *statsPath != "" || *progress {
			est = stats.New()
		}
		if prog != nil {
			// The note pairs the estimator's convergence signal with this
			// campaign's fork-from-checkpoint savings. The registry's
			// sfi.restore.* counters are cumulative across campaigns,
			// hence the per-campaign baselines.
			restores := reg.Counter("sfi.restore.count")
			saved := reg.Counter("sfi.restore.saved_instrs")
			baseRestores, baseSaved := restores.Value(), saved.Value()
			prog.SetNote(func() string {
				var parts []string
				if est != nil {
					if id, half := est.WorstCI(); id >= 0 {
						parts = append(parts, fmt.Sprintf("worst-ci r%d ±%.3f", id, half))
					}
				}
				if n := restores.Value() - baseRestores; n > 0 {
					parts = append(parts, fmt.Sprintf("forked %d (saved %dM instr)",
						n, (saved.Value()-baseSaved)/1e6))
				}
				return strings.Join(parts, ", ")
			})
		}
		campCfg := sfi.CampaignConfig{
			Trials: *trials, Seed: *seed, Dmax: *dmax, Workers: *workers,
			Engine: eng, Obs: reg, Progress: prog, Checkpoints: *checkpoints,
			App: sp.Name, Regions: serve.RegionTable(res, *dmax), Trace: sink,
			Shard: shard, Stop: stop, Prior: priors[sp.Name],
		}
		if est != nil {
			campCfg.Stats = est
		}
		camp, err := sfi.RunCampaign(res.Mod, res.Metas, art.Outputs, campCfg)
		prog.Finish()
		if err != nil {
			return fmt.Errorf("%s: %w", sp.Name, err)
		}
		if stop != nil {
			adaptiveNotes = append(adaptiveNotes, fmt.Sprintf(
				"adaptive %s: executed %d/%d trials, skipped %d, mispredicted %d",
				sp.Name, camp.Executed, *trials, camp.Skipped, camp.Mispredicted))
		}
		if est != nil && *statsPath != "" {
			snaps = append(snaps, est.Snapshot())
		}
		maskStr := "-"
		if *masking {
			mprog := newProgress(sp.Name+" masking", *trials)
			mres, err := sfi.MeasureMasking(func() (*ir.Module, []*ir.Global) {
				a := sp.Build()
				return a.Mod, a.Outputs
			}, sfi.MaskingConfig{
				Trials: *trials, Seed: *seed, Workers: *workers,
				Engine: eng, Obs: reg, Progress: mprog,
			})
			mprog.Finish()
			if err != nil {
				return fmt.Errorf("%s: %w", sp.Name, err)
			}
			maskStr = fmt.Sprintf("%.1f%%", mres.MaskedRate*100)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n", sp.Name,
			camp.Counts[sfi.Recovered], camp.Counts[sfi.Benign],
			camp.Counts[sfi.DetectedUnrecoverable], camp.Counts[sfi.RecoveredWrong],
			camp.Counts[sfi.SilentCorruption], camp.Counts[sfi.Crashed],
			camp.SameInstance, maskStr)
	}
	tw.Flush()
	for _, note := range adaptiveNotes {
		fmt.Fprintln(tableOut, note)
	}
	if sink != nil {
		if err := sink.Err(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if *statsPath != "" {
		if err := stats.WriteSnapshotsFile(*statsPath, snaps, stdout); err != nil {
			return fmt.Errorf("stats: %w", err)
		}
	}
	if err := obs.WriteMetricsTo(*metrics, reg, tableOut); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if err := obs.WritePrometheusFileTo(*prom, reg, tableOut); err != nil {
		return fmt.Errorf("prom: %w", err)
	}
	if err := obs.WriteChromeTraceFileTo(*chrometrace, reg, tableOut); err != nil {
		return fmt.Errorf("chrometrace: %w", err)
	}
	return nil
}

// runMerge merges per-shard JSONL ledgers (in any argument order) into
// one campaign trace on the -trace destination, and with -stats replays
// the merged records through the online estimator so the snapshot is
// byte-identical to a single-process -stats run.
func runMerge(files []string, tracePath, statsPath string, stdout io.Writer) error {
	if len(files) == 0 {
		return fmt.Errorf("merge: no shard ledgers given (pass them as positional arguments)")
	}
	if (tracePath == "" || tracePath == "-") && statsPath == "-" {
		return fmt.Errorf("merge: the merged ledger and -stats - both claim stdout; write at least one to a file")
	}
	readers := make([]io.Reader, 0, len(files))
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			return fmt.Errorf("merge: %w", err)
		}
		defer f.Close()
		readers = append(readers, f)
	}
	var buf bytes.Buffer
	if err := attrib.MergeTraces(&buf, readers...); err != nil {
		return err
	}
	out := stdout
	if tracePath != "" && tracePath != "-" {
		f, err := os.Create(tracePath)
		if err != nil {
			return fmt.Errorf("merge: %w", err)
		}
		defer f.Close()
		out = f
	}
	if _, err := out.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("merge: %w", err)
	}
	if statsPath != "" {
		campaigns, err := attrib.ReadTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return fmt.Errorf("merge: %w", err)
		}
		snaps := make([]*stats.Snapshot, len(campaigns))
		for i, c := range campaigns {
			snaps[i] = stats.Replay(c.Meta, c.Records).Snapshot()
		}
		if err := stats.WriteSnapshotsFile(statsPath, snaps, stdout); err != nil {
			return fmt.Errorf("merge: stats: %w", err)
		}
	}
	return nil
}

// runReport ingests a JSONL trial trace and writes the attribution report.
func runReport(path string, jsonOut bool, stdout io.Writer) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("report: %w", err)
		}
		defer f.Close()
		in = f
	}
	campaigns, err := attrib.ReadTrace(in)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if len(campaigns) == 0 {
		return fmt.Errorf("report: trace holds no campaigns")
	}
	reps := make([]*attrib.Report, len(campaigns))
	for i, c := range campaigns {
		reps[i] = attrib.Attribute(c)
	}
	if jsonOut {
		return attrib.WriteJSON(stdout, reps)
	}
	return attrib.WriteText(stdout, reps)
}
