package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"encore/internal/stats"
)

func TestNegativeDmaxRejected(t *testing.T) {
	var out, errOut bytes.Buffer
	err := runSFI([]string{"-app", "rawcaudio", "-trials", "3", "-dmax", "-5"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("want a negative-dmax error, got %v", err)
	}
}

func TestUnknownEngineRejected(t *testing.T) {
	var out, errOut bytes.Buffer
	err := runSFI([]string{"-app", "rawcaudio", "-trials", "3", "-engine", "jit"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("want an unknown-engine error, got %v", err)
	}
}

// TestEngineInvariantTable runs the same campaign under each engine and
// requires an identical outcome table: the -engine flag may only move
// wall-clock, never results.
func TestEngineInvariantTable(t *testing.T) {
	run := func(engine string) string {
		var out, errOut bytes.Buffer
		args := []string{"-app", "rawcaudio", "-trials", "8", "-seed", "3"}
		if engine != "" {
			args = append(args, "-engine", engine)
		}
		if err := runSFI(args, &out, &errOut); err != nil {
			t.Fatalf("-engine %s: %v", engine, err)
		}
		return out.String()
	}
	want := run("")
	for _, engine := range []string{"fast", "ref", "closure"} {
		if got := run(engine); got != want {
			t.Errorf("-engine %s table diverges:\n%s\nvs default:\n%s", engine, got, want)
		}
	}
}

// TestTraceStdoutDeterministic runs the command twice with the same seed
// and requires byte-identical JSONL on stdout — the acceptance bar for
// downstream tooling — with the human table diverted to stderr.
func TestTraceStdoutDeterministic(t *testing.T) {
	run := func() (string, string) {
		var out, errOut bytes.Buffer
		if err := runSFI([]string{"-app", "rawcaudio", "-trials", "8", "-seed", "1", "-trace", "-"}, &out, &errOut); err != nil {
			t.Fatal(err)
		}
		return out.String(), errOut.String()
	}
	out1, tbl1 := run()
	out2, _ := run()
	if out1 != out2 {
		t.Fatal("trace stdout differs across identical runs")
	}
	lines := strings.Split(strings.TrimRight(out1, "\n"), "\n")
	if len(lines) != 1+8 {
		t.Fatalf("got %d trace lines, want 1 header + 8 trials", len(lines))
	}
	for _, l := range lines {
		var v map[string]any
		if err := json.Unmarshal([]byte(l), &v); err != nil {
			t.Fatalf("non-JSON trace line %q: %v", l, err)
		}
	}
	if !strings.Contains(tbl1, "recovered") {
		t.Error("human table should have moved to stderr")
	}
	if strings.Contains(out1, "app\trecovered") {
		t.Error("human table leaked into the JSONL stream")
	}
}

// TestReportMode writes a trace to a file and feeds it back through
// -report, checking the per-region measured-vs-predicted table.
func TestReportMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var out, errOut bytes.Buffer
	if err := runSFI([]string{"-app", "g721encode", "-trials", "30", "-seed", "2", "-trace", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	var rep bytes.Buffer
	if err := runSFI([]string{"-report", path}, &rep, &errOut); err != nil {
		t.Fatal(err)
	}
	text := rep.String()
	for _, want := range []string{"app g721encode", "30 trials", "measured same-instance", "alpha", "|err|"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}

	var js bytes.Buffer
	if err := runSFI([]string{"-report", path, "-json"}, &js, &errOut); err != nil {
		t.Fatal(err)
	}
	var reps []struct {
		App          string  `json:"app"`
		PredCoverage float64 `json:"pred_coverage"`
		Regions      []struct {
			Alpha  float64 `json:"alpha"`
			AbsErr float64 `json:"abs_err"`
		} `json:"regions"`
	}
	if err := json.Unmarshal(js.Bytes(), &reps); err != nil {
		t.Fatalf("JSON report: %v", err)
	}
	if len(reps) != 1 || reps[0].App != "g721encode" || len(reps[0].Regions) == 0 {
		t.Fatalf("JSON report shape: %+v", reps)
	}
	if reps[0].PredCoverage <= 0 || reps[0].PredCoverage > 1 {
		t.Errorf("implausible predicted coverage %g", reps[0].PredCoverage)
	}
}

func TestReportModeErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := runSFI([]string{"-report", filepath.Join(t.TempDir(), "missing.jsonl")}, &out, &errOut); err == nil {
		t.Error("missing trace file must error")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSFI([]string{"-report", empty}, &out, &errOut); err == nil || !strings.Contains(err.Error(), "no campaigns") {
		t.Errorf("empty trace: %v", err)
	}
}

// TestChromeTraceFlag checks -chrometrace produces a well-formed
// chrome://tracing array including the campaign span.
func TestChromeTraceFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.json")
	var out, errOut bytes.Buffer
	if err := runSFI([]string{"-app", "rawcaudio", "-trials", "3", "-chrometrace", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
	}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	found := false
	for _, e := range events {
		if e.Name == "sfi/campaign" && e.Ph == "X" {
			found = true
		}
	}
	if !found {
		t.Errorf("no sfi/campaign complete event in %s", data)
	}
}

// TestStatsFlagDeterministic locks the tentpole acceptance bar at the
// command level: -stats output is byte-identical across -workers and
// -engine, and parses back as estimator snapshots.
func TestStatsFlagDeterministic(t *testing.T) {
	run := func(extra ...string) string {
		var out, errOut bytes.Buffer
		args := append([]string{"-app", "rawcaudio", "-trials", "12", "-seed", "5", "-stats", "-"}, extra...)
		if err := runSFI(args, &out, &errOut); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(errOut.String(), "recovered") {
			t.Error("human table should have moved to stderr when -stats owns stdout")
		}
		return out.String()
	}
	want := run("-workers", "1")
	for _, extra := range [][]string{
		{"-workers", "4"},
		{"-workers", "8"},
		{"-workers", "4", "-engine", "closure"},
	} {
		if got := run(extra...); got != want {
			t.Errorf("-stats output diverges under %v", extra)
		}
	}
	snaps, err := stats.ReadSnapshots(strings.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].App != "rawcaudio" || snaps[0].Trials != 12 {
		t.Fatalf("unexpected snapshots: %+v", snaps)
	}
}

func TestStatsAndTraceBothOnStdoutRejected(t *testing.T) {
	var out, errOut bytes.Buffer
	err := runSFI([]string{"-app", "rawcaudio", "-trials", "3", "-stats", "-", "-trace", "-"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "stdout") {
		t.Fatalf("want a stdout-conflict error, got %v", err)
	}
}

// TestPromFlag checks the -prom exposition contains the SFI counters.
func TestPromFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	var out, errOut bytes.Buffer
	if err := runSFI([]string{"-app", "rawcaudio", "-trials", "3", "-prom", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The command reports into the shared obs.Default() registry, so
	// counter values accumulate across tests in one process — assert the
	// family and a sample line exist, not an exact value.
	for _, want := range []string{"# TYPE encore_sfi_trials counter", "\nencore_sfi_trials "} {
		if !strings.Contains(string(data), want) {
			t.Errorf("prom exposition missing %q:\n%s", want, data)
		}
	}
}

// TestShardFlagValidation covers the -shard rejection surface: the
// index must land inside [1, K], both parts must parse, and the flag is
// incompatible with -adaptive.
func TestShardFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want string
	}{
		{"3/2", "shard"},
		{"0/0", "shard"},
		{"0/3", "shard"},
		{"-1/3", "shard"},
		{"1/-3", "shard"},
		{"a/b", "shard"},
		{"1", "shard"},
	} {
		var out, errOut bytes.Buffer
		err := runSFI([]string{"-app", "rawcaudio", "-trials", "6", "-shard", tc.spec}, &out, &errOut)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("-shard %s: want a shard error, got %v", tc.spec, err)
		}
	}
	var out, errOut bytes.Buffer
	err := runSFI([]string{"-app", "rawcaudio", "-trials", "6", "-shard", "1/2", "-adaptive"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "adaptive") {
		t.Fatalf("-shard with -adaptive: %v", err)
	}
	if err := runSFI([]string{"-app", "rawcaudio", "-trials", "6", "stray.jsonl"}, &out, &errOut); err == nil ||
		!strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("stray positional args: %v", err)
	}
}

// TestMergeModeByteIdentical is the end-to-end acceptance check at the
// command level: three -shard runs, merged with -merge in permuted
// order, must reproduce the single-process -trace and -stats output
// byte for byte.
func TestMergeModeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	single := filepath.Join(dir, "single.jsonl")
	singleStats := filepath.Join(dir, "single.stats")
	if err := runSFI([]string{"-app", "rawcaudio", "-trials", "30", "-seed", "4",
		"-trace", single, "-stats", singleStats}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	shards := make([]string, 3)
	for i := range shards {
		shards[i] = filepath.Join(dir, fmt.Sprintf("s%d.jsonl", i+1))
		if err := runSFI([]string{"-app", "rawcaudio", "-trials", "30", "-seed", "4",
			"-shard", fmt.Sprintf("%d/3", i+1), "-trace", shards[i]}, &out, &errOut); err != nil {
			t.Fatalf("shard %d: %v", i+1, err)
		}
	}
	merged := filepath.Join(dir, "merged.jsonl")
	mergedStats := filepath.Join(dir, "merged.stats")
	if err := runSFI([]string{"-merge", "-trace", merged, "-stats", mergedStats,
		shards[2], shards[0], shards[1]}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{single, merged}, {singleStats, mergedStats}} {
		want, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s and %s differ", pair[0], pair[1])
		}
	}
}

// TestMergeModeErrors covers the merge-mode rejection surface.
func TestMergeModeErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := runSFI([]string{"-merge"}, &out, &errOut); err == nil ||
		!strings.Contains(err.Error(), "no shard ledgers") {
		t.Errorf("merge without files: %v", err)
	}
	if err := runSFI([]string{"-merge", "-report", "x.jsonl", "a.jsonl"}, &out, &errOut); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("merge with report: %v", err)
	}
	if err := runSFI([]string{"-merge", "-stats", "-", "a.jsonl"}, &out, &errOut); err == nil ||
		!strings.Contains(err.Error(), "stdout") {
		t.Errorf("merge ledger and stats both on stdout: %v", err)
	}
	if err := runSFI([]string{"-merge", "-trace", filepath.Join(t.TempDir(), "out.jsonl"),
		filepath.Join(t.TempDir(), "missing.jsonl")}, &out, &errOut); err == nil {
		t.Error("merge with a missing shard file must error")
	}
}

// TestAdaptiveFlagDeterministic: the -adaptive ledger must be
// byte-identical across -workers and -engine, skip a meaningful share
// of the trial space, and -reuse of that ledger must skip even more.
func TestAdaptiveFlagDeterministic(t *testing.T) {
	dir := t.TempDir()
	run := func(path string, extra ...string) string {
		var out, errOut bytes.Buffer
		args := append([]string{"-app", "g721encode", "-trials", "300", "-seed", "7",
			"-adaptive", "-adaptive-ci", "0.12", "-trace", path}, extra...)
		if err := runSFI(args, &out, &errOut); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	a := filepath.Join(dir, "a.jsonl")
	tbl := run(a, "-workers", "1")
	if !strings.Contains(tbl, "adaptive g721encode: executed") {
		t.Errorf("no adaptive summary line in table output:\n%s", tbl)
	}
	b := filepath.Join(dir, "b.jsonl")
	run(b, "-workers", "5", "-engine", "ref")
	wantBytes, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBytes, gotBytes) {
		t.Error("adaptive ledger differs across -workers/-engine")
	}

	var out, errOut bytes.Buffer
	if err := runSFI([]string{"-app", "g721encode", "-trials", "300", "-seed", "7",
		"-adaptive", "-adaptive-ci", "0.12", "-reuse", a}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "skipped 300") {
		t.Errorf("reusing a converged ledger should skip every trial:\n%s", out.String())
	}
}

// TestAdaptiveFlagErrors covers the adaptive flag rejection surface.
func TestAdaptiveFlagErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := runSFI([]string{"-app", "rawcaudio", "-trials", "6", "-adaptive-ci", "-0.1"}, &out, &errOut); err == nil ||
		!strings.Contains(err.Error(), "negative") {
		t.Errorf("negative -adaptive-ci: %v", err)
	}
	if err := runSFI([]string{"-app", "rawcaudio", "-trials", "6", "-adaptive-round", "-2"}, &out, &errOut); err == nil ||
		!strings.Contains(err.Error(), "negative") {
		t.Errorf("negative -adaptive-round: %v", err)
	}
	if err := runSFI([]string{"-app", "rawcaudio", "-trials", "6", "-reuse", "x.jsonl"}, &out, &errOut); err == nil ||
		!strings.Contains(err.Error(), "-adaptive") {
		t.Errorf("-reuse without -adaptive: %v", err)
	}
	if err := runSFI([]string{"-app", "rawcaudio", "-trials", "6", "-adaptive",
		"-reuse", filepath.Join(t.TempDir(), "missing.jsonl")}, &out, &errOut); err == nil {
		t.Error("-reuse with a missing file must error")
	}
}
